package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/match"
	"medrelax/internal/medkb"
	"medrelax/internal/ontology"
	"medrelax/internal/synthkb"
)

func TestNewPRF(t *testing.T) {
	m := NewPRF(8, 2, 2)
	if math.Abs(m.Precision-80) > 1e-9 || math.Abs(m.Recall-80) > 1e-9 || math.Abs(m.F1-80) > 1e-9 {
		t.Errorf("PRF = %+v", m)
	}
	// Degenerate cases are zero, not NaN.
	z := NewPRF(0, 0, 0)
	if z.Precision != 0 || z.Recall != 0 || z.F1 != 0 {
		t.Errorf("zero PRF = %+v", z)
	}
	if !strings.Contains(m.String(), "P=80.00") {
		t.Errorf("String = %s", m)
	}
}

func TestPRFProperties(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		m := NewPRF(int(tp), int(fp), int(fn))
		if math.IsNaN(m.Precision) || math.IsNaN(m.Recall) || math.IsNaN(m.F1) {
			return false
		}
		// Percentages in range, F1 between min and max of P and R (harmonic
		// mean property) when both positive.
		inRange := m.Precision >= 0 && m.Precision <= 100 &&
			m.Recall >= 0 && m.Recall <= 100 && m.F1 >= 0 && m.F1 <= 100
		if !inRange {
			return false
		}
		if m.Precision > 0 && m.Recall > 0 {
			lo, hi := m.Precision, m.Recall
			if lo > hi {
				lo, hi = hi, lo
			}
			return m.F1 >= lo-1e-9 && m.F1 <= hi+1e-9
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanPRF(t *testing.T) {
	m := MeanPRF([]float64{1, 0.5}, []float64{0.5, 0.5})
	if math.Abs(m.Precision-75) > 1e-9 || math.Abs(m.Recall-50) > 1e-9 {
		t.Errorf("MeanPRF = %+v", m)
	}
	if got := MeanPRF(nil, nil); got.Precision != 0 {
		t.Errorf("empty MeanPRF = %+v", got)
	}
	if got := MeanPRF([]float64{1}, []float64{1, 1}); got.Precision != 0 {
		t.Errorf("mismatched MeanPRF = %+v", got)
	}
}

func TestPrecisionRecallAtK(t *testing.T) {
	ranked := []bool{true, false, true, true, false}
	p, r := PrecisionRecallAtK(ranked, 5, 6)
	if math.Abs(p-0.6) > 1e-9 || math.Abs(r-0.5) > 1e-9 {
		t.Errorf("P@5=%v R@5=%v", p, r)
	}
	// Fewer results than k: precision over returned.
	p, r = PrecisionRecallAtK([]bool{true}, 10, 1)
	if p != 1 || r != 1 {
		t.Errorf("short list: P=%v R=%v", p, r)
	}
	// Nothing relevant expected: recall 1 by convention.
	_, r = PrecisionRecallAtK(nil, 10, 0)
	if r != 1 {
		t.Errorf("empty expectation recall = %v", r)
	}
	// k <= 0.
	p, r = PrecisionRecallAtK(ranked, 0, 3)
	if p != 0 || r != 0 {
		t.Errorf("k=0: P=%v R=%v", p, r)
	}
	// Recall clamps at 1.
	_, r = PrecisionRecallAtK([]bool{true, true}, 2, 1)
	if r != 1 {
		t.Errorf("recall must clamp to 1, got %v", r)
	}
}

func TestFormatTable(t *testing.T) {
	s := FormatTable("Title", []string{"A", "Bee"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(s, "Title") || !strings.Contains(s, "333") {
		t.Errorf("table = %s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 {
		t.Errorf("table has %d lines: %s", len(lines), s)
	}
}

func buildOracleWorld(t *testing.T) (*synthkb.World, *medkb.MED, *Oracle) {
	t.Helper()
	w, err := synthkb.Generate(synthkb.Config{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	med, err := medkb.Generate(w, medkb.Config{Seed: 18, Drugs: 40})
	if err != nil {
		t.Fatal(err)
	}
	return w, med, NewOracle(w, med)
}

func TestOracleBasics(t *testing.T) {
	w, med, o := buildOracleWorld(t)
	// Identity.
	any := w.Findings[0]
	if !o.Relevant(any, any, nil) {
		t.Error("a concept is relevant to itself")
	}
	// Antonyms are never relevant.
	for a, b := range w.AntonymOf {
		if o.Relevant(a, b, nil) {
			ca, _ := w.Graph.Concept(a)
			cb, _ := w.Graph.Concept(b)
			t.Errorf("antonyms %s / %s judged relevant", ca.Name, cb.Name)
		}
	}
	// Cross-system pairs are never relevant.
	var resp, card eks.ConceptID
	for _, id := range w.Findings {
		switch w.Attrs[id].System {
		case "respiratory":
			if resp == 0 {
				resp = id
			}
		case "cardiovascular":
			if card == 0 {
				card = id
			}
		}
	}
	if resp != 0 && card != 0 && o.Relevant(resp, card, nil) {
		t.Error("cross-system pair judged relevant")
	}
	_ = med
}

func TestOracleContextGate(t *testing.T) {
	w, med, o := buildOracleWorld(t)
	ctxInd := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	ctxRisk := &ontology.Context{Domain: "Risk", Relationship: "hasFinding", Range: "Finding"}
	// Find a pair relevant without context where the candidate is untreated.
	checkedInd, checkedRisk := false, false
	for _, a := range w.Findings {
		for _, b := range w.Findings {
			if a == b || !o.Relevant(a, b, nil) {
				continue
			}
			if !med.Treated[b] && !checkedInd {
				checkedInd = true
				if o.Relevant(a, b, ctxInd) {
					t.Error("untreated candidate judged relevant in indication context")
				}
			}
			if !med.Caused[b] && !checkedRisk {
				checkedRisk = true
				if o.Relevant(a, b, ctxRisk) {
					t.Error("uncaused candidate judged relevant in risk context")
				}
			}
			if checkedInd && checkedRisk {
				return
			}
		}
	}
	if !checkedInd || !checkedRisk {
		t.Log("warning: could not exercise both context gates")
	}
}

func TestOracleUnknownConcepts(t *testing.T) {
	_, _, o := buildOracleWorld(t)
	if o.Relevant(999999999, 999999998, nil) {
		t.Error("unknown concepts must not be relevant")
	}
}

func TestRelevantSet(t *testing.T) {
	w, med, o := buildOracleWorld(t)
	universe := map[eks.ConceptID]bool{}
	for cid := range med.FindingInstance {
		universe[cid] = true
	}
	// RelevantSet excludes the query, is sorted, and agrees with Relevant.
	var query eks.ConceptID
	for cid := range med.FindingInstance {
		query = cid
		break
	}
	set := o.RelevantSet(query, nil, universe)
	for i, id := range set {
		if id == query {
			t.Error("query in its own relevant set")
		}
		if i > 0 && set[i-1] >= id {
			t.Error("relevant set not sorted")
		}
		if !o.Relevant(query, id, nil) {
			t.Error("set member not relevant")
		}
	}
	_ = w
}

func TestGradeDist(t *testing.T) {
	var g GradeDist
	for _, grade := range []int{1, 5, 5, 3, 0, 9} { // out-of-range clamps
		g.add(grade)
	}
	if g.Total() != 6 {
		t.Errorf("Total = %d", g.Total())
	}
	if g.Counts[0] != 2 || g.Counts[4] != 3 {
		t.Errorf("Counts = %v", g.Counts)
	}
	if math.Abs(g.Percent(5)-50) > 1e-9 {
		t.Errorf("Percent(5) = %v", g.Percent(5))
	}
	if g.Percent(6) != 0 || g.Percent(0) != 0 {
		t.Error("out-of-range Percent must be 0")
	}
	want := float64(1+5+5+3+1+5) / 6 // clamped: 1,5,5,3,1,5
	if math.Abs(g.Average()-want) > 1e-9 {
		t.Errorf("Average = %v, want %v", g.Average(), want)
	}
	var empty GradeDist
	if empty.Average() != 0 || empty.Percent(3) != 0 {
		t.Error("empty dist must be zero")
	}
}

func TestStudyConfigDefaults(t *testing.T) {
	c := StudyConfig{}.withDefaults()
	if c.Participants != 20 || c.T1Questions != 20 || c.T2Questions != 10 || c.MaxAttempts != 5 {
		t.Errorf("defaults = %+v", c)
	}
	if c.UnanswerableProb <= 0 {
		t.Error("unanswerable probability must default")
	}
}

func TestFormatStudy(t *testing.T) {
	var res StudyResult
	res.WithQR.T1.add(5)
	res.WithQR.T2.add(4)
	res.WithoutQR.T1.add(2)
	res.WithoutQR.T2.add(1)
	s := FormatStudy(res)
	for _, want := range []string{"Very satisfied", "AVG", "QR T1", "no-QR T2"} {
		if !strings.Contains(s, want) {
			t.Errorf("study table missing %q:\n%s", want, s)
		}
	}
}

func TestBootstrapCI(t *testing.T) {
	// Constant values: a degenerate interval at the mean.
	ci := BootstrapCI([]float64{0.5, 0.5, 0.5, 0.5}, 500, 0.95, 1)
	if ci.Mean != 0.5 || ci.Low != 0.5 || ci.High != 0.5 {
		t.Errorf("constant CI = %+v", ci)
	}
	// Spread values: interval brackets the mean and has positive width.
	vals := []float64{0, 0.2, 0.4, 0.6, 0.8, 1, 0.3, 0.7, 0.5, 0.9}
	ci = BootstrapCI(vals, 2000, 0.95, 2)
	if !(ci.Low < ci.Mean && ci.Mean < ci.High) {
		t.Errorf("CI does not bracket mean: %+v", ci)
	}
	if ci.High-ci.Low <= 0 {
		t.Error("zero-width CI on spread data")
	}
	// Deterministic for a fixed seed.
	ci2 := BootstrapCI(vals, 2000, 0.95, 2)
	if ci != ci2 {
		t.Error("bootstrap not deterministic")
	}
	// Degenerate inputs.
	if got := BootstrapCI(nil, 100, 0.95, 1); got.Mean != 0 {
		t.Errorf("empty CI = %+v", got)
	}
	// Defaults kick in for bad parameters.
	ci = BootstrapCI(vals, 0, 2.0, 3)
	if ci.Resamples != 2000 || ci.Level != 0.95 {
		t.Errorf("defaults not applied: %+v", ci)
	}
}

func TestPairedBootstrapDelta(t *testing.T) {
	a := []float64{0.9, 0.8, 0.85, 0.95, 0.9, 0.88, 0.92, 0.8}
	b := []float64{0.5, 0.4, 0.45, 0.55, 0.5, 0.52, 0.48, 0.44}
	ci := PairedBootstrapDelta(a, b, 2000, 0.95, 4)
	if ci.Low <= 0 {
		t.Errorf("a clearly dominates b; CI must exclude zero: %+v", ci)
	}
	// Identical series: delta CI centered at zero.
	ci = PairedBootstrapDelta(a, a, 500, 0.95, 4)
	if ci.Mean != 0 || ci.Low != 0 || ci.High != 0 {
		t.Errorf("self delta = %+v", ci)
	}
}

func TestEvaluateMappersAndMethodsRunners(t *testing.T) {
	w, med, o := buildOracleWorld(t)
	corp := medkb.BuildCorpus(w, med, medkb.CorpusConfig{Seed: 19})
	mapper := exactWorldMapper{w}
	ing, err := core.Ingest(med.Ontology, med.Store, w.Graph, corp, mapper, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Table 1 runner: three mappers, metrics in range, EXACT P=100.
	scores := EvaluateMappers(med, []match.Mapper{match.NewExact(w.Graph), match.NewEdit(w.Graph, 0)})
	if len(scores) != 2 {
		t.Fatalf("scores = %d", len(scores))
	}
	for _, s := range scores {
		if s.Precision < 0 || s.Precision > 100 || s.Recall < 0 || s.Recall > 100 {
			t.Errorf("%s out of range: %+v", s.Method, s.PRF)
		}
	}
	if scores[0].Method != "EXACT" || scores[0].Precision != 100 {
		t.Errorf("EXACT = %+v", scores[0])
	}

	// Query selection: popular, deduplicated, context-bearing.
	queries := SelectQueries(med, o, 30)
	if len(queries) != 30 {
		t.Fatalf("queries = %d", len(queries))
	}
	seen := map[string]bool{}
	for _, q := range queries {
		if q.Term == "" || q.Ctx == nil {
			t.Fatalf("malformed query %+v", q)
		}
		if seen[q.Term] {
			t.Errorf("duplicate query term %q", q.Term)
		}
		seen[q.Term] = true
	}

	// Table 2 runner over one method.
	m := core.NewQR(ing, mapper, core.RelaxOptions{Radius: 3, DynamicRadius: true})
	rows := EvaluateMethods([]core.Method{m}, queries, o, ing.Flagged, 10)
	if len(rows) != 1 || rows[0].Method != "QR" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].F1 <= 0 || rows[0].F1 > 100 {
		t.Errorf("F1 = %v", rows[0].F1)
	}

	// Per-query values agree with the macro average direction.
	perQ := PerQueryF1(m, queries, o, ing.Flagged, 10)
	if len(perQ) != len(queries) {
		t.Fatalf("per-query values = %d", len(perQ))
	}
	for _, v := range perQ {
		if v < 0 || v > 1 {
			t.Fatalf("per-query F1 %v out of [0,1]", v)
		}
	}
	ci := BootstrapCI(perQ, 1000, 0.95, 5)
	if ci.Mean <= 0 {
		t.Errorf("bootstrap mean = %v", ci.Mean)
	}
}

type exactWorldMapper struct{ w *synthkb.World }

func (m exactWorldMapper) Name() string { return "EXACT" }
func (m exactWorldMapper) Map(name string) (eks.ConceptID, bool) {
	ids := m.w.Graph.LookupName(name)
	if len(ids) == 0 {
		return 0, false
	}
	return ids[0], true
}
