package eval

import (
	"sort"

	"medrelax/internal/eks"
	"medrelax/internal/medkb"
	"medrelax/internal/ontology"
	"medrelax/internal/synthkb"
)

// Oracle is the stand-in for the paper's 20 subject-matter experts: it
// judges whether a relaxed concept is semantically related to a query
// concept in a given context, reading the generator's latent ground truth
// (body system, condition type, polarity) rather than anything the methods
// under evaluation can see.
type Oracle struct {
	World *synthkb.World
	Med   *medkb.MED
}

// NewOracle builds an oracle.
func NewOracle(world *synthkb.World, med *medkb.MED) *Oracle {
	return &Oracle{World: world, Med: med}
}

// Relevant judges candidate cand as a relaxation of query in ctx. The
// judgment mirrors how an SME reasons:
//
//   - the same concept is always relevant;
//   - clinically opposite findings (planted antonym pairs) are never
//     relevant — drugs for hypothermia do not treat hyperpyrexia;
//   - the finding must concern the same body system and have a clinically
//     compatible condition type (the generator's type ring: an infection
//     relates to an inflammation, not to a neoplasm);
//   - across types it must share the anatomical site (a cornea abscess
//     relates to a cornea stenosis); away from the query's site, only
//     base-level conditions count — relaxing "lung infection" into
//     "chronic trachea inflammation stage 2" is too specific a leap;
//   - and, when a context is given, the KB must actually hold data of that
//     kind for the candidate: a relaxation into a finding no drug treats is
//     not a useful answer to "what drugs treat X".
func (o *Oracle) Relevant(query, cand eks.ConceptID, ctx *ontology.Context) bool {
	if query == cand {
		return true
	}
	a, okA := o.World.Attrs[query]
	b, okB := o.World.Attrs[cand]
	if !okA || !okB {
		return false
	}
	if a.Polarity*b.Polarity < 0 {
		return false
	}
	if a.System == "" || a.System != b.System {
		return false
	}
	sameOrgan := a.Organ != "" && a.Organ == b.Organ
	if sameOrgan {
		// Same anatomical site: related across pathology types, but a
		// clinically adjacent type is required once the severity levels
		// drift apart (a stage-3 staging of an unrelated process at the
		// same site is not a useful relaxation).
		if !synthkb.RelatedTypes(a.Type, b.Type) && absInt(a.Severity-b.Severity) > 1 {
			return false
		}
	} else {
		// Away from the query's anatomical site, only clinically adjacent
		// condition types are still judged related, and not the deeply
		// staged specializations.
		if !synthkb.RelatedTypes(a.Type, b.Type) {
			return false
		}
		if b.Severity > 1 {
			return false
		}
	}
	if ctx != nil {
		switch {
		case o.isIndicationContext(ctx):
			if !o.Med.Treated[cand] {
				return false
			}
		case o.isRiskContext(ctx):
			if !o.Med.Caused[cand] {
				return false
			}
		}
	}
	return true
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func (o *Oracle) isIndicationContext(ctx *ontology.Context) bool {
	return ctx.Relationship == "hasFinding" &&
		o.Med.Ontology.IsSubConceptOf(ctx.Domain, "Indication")
}

func (o *Oracle) isRiskContext(ctx *ontology.Context) bool {
	return ctx.Relationship == "hasFinding" &&
		o.Med.Ontology.IsSubConceptOf(ctx.Domain, "Risk")
}

// RelevantSet returns all flagged candidates (from the given universe,
// typically the FEC set) relevant to query in ctx, excluding the query
// itself — the recall denominator for Table 2.
func (o *Oracle) RelevantSet(query eks.ConceptID, ctx *ontology.Context, universe map[eks.ConceptID]bool) []eks.ConceptID {
	var out []eks.ConceptID
	for cand := range universe {
		if cand == query {
			continue
		}
		if o.Relevant(query, cand, ctx) {
			out = append(out, cand)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
