package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"medrelax/internal/dialog"
	"medrelax/internal/eks"
	"medrelax/internal/ontology"
)

// StudyConfig controls the simulated user study of Table 3.
type StudyConfig struct {
	// Seed drives participant behaviour.
	Seed int64
	// Participants is the panel size; the paper used 20 SMEs.
	Participants int
	// T1Questions per participant around given concepts; the paper used 20.
	T1Questions int
	// T2Questions per participant, free choice; the paper used 10.
	T2Questions int
	// MaxAttempts is the initial ask plus rephrases; the paper allowed 5.
	MaxAttempts int
	// UnanswerableProb is the chance a T2 question targets a concept with
	// no KB answer or whose expected answer is missing; the paper observed
	// 9 unanswerable questions plus 7 missing-answer incidents out of 200.
	UnanswerableProb float64
}

func (c StudyConfig) withDefaults() StudyConfig {
	if c.Participants <= 0 {
		c.Participants = 20
	}
	if c.T1Questions <= 0 {
		c.T1Questions = 20
	}
	if c.T2Questions <= 0 {
		c.T2Questions = 10
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.UnanswerableProb <= 0 {
		c.UnanswerableProb = 0.09
	}
	return c
}

// GradeDist is a distribution over the 5-point satisfaction scale.
type GradeDist struct {
	Counts [5]int // index 0 = grade 1 ("very dissatisfied") ... 4 = grade 5
}

func (g *GradeDist) add(grade int) {
	if grade < 1 {
		grade = 1
	}
	if grade > 5 {
		grade = 5
	}
	g.Counts[grade-1]++
}

// Total returns the number of grades recorded.
func (g GradeDist) Total() int {
	n := 0
	for _, c := range g.Counts {
		n += c
	}
	return n
}

// Percent returns the share of the given grade (1–5) in percent.
func (g GradeDist) Percent(grade int) float64 {
	n := g.Total()
	if n == 0 || grade < 1 || grade > 5 {
		return 0
	}
	return 100 * float64(g.Counts[grade-1]) / float64(n)
}

// Average returns the mean grade.
func (g GradeDist) Average() float64 {
	n := g.Total()
	if n == 0 {
		return 0
	}
	sum := 0
	for i, c := range g.Counts {
		sum += (i + 1) * c
	}
	return float64(sum) / float64(n)
}

// StudyArm is one system condition (with or without QR).
type StudyArm struct {
	T1, T2 GradeDist
}

// StudyResult is the full Table 3.
type StudyResult struct {
	WithQR, WithoutQR StudyArm
}

// StudyEnvironment bundles what the simulator needs: two conversations over
// the same KB (one with relaxation, one without), the ground truth for term
// variation and relevance judgment, and the query workload material.
type StudyEnvironment struct {
	WithQR    *dialog.Conversation
	WithoutQR *dialog.Conversation
	Oracle    *Oracle
	// Flagged is the FEC set: concepts the KB knows.
	Flagged map[eks.ConceptID]bool
}

// RunUserStudy simulates the paper's two-task user study. Each simulated
// participant asks questions about target conditions using imperfect
// terminology (synonyms, paraphrases, typos, and sometimes terms absent
// from the KB altogether), rephrases after unhelpful responses — moving
// toward canonical phrasing — and grades the interaction 5 minus the number
// of failed attempts. Orthogonal incidents the paper reports (conversation
// flow complaints, unexplained low grades, overwhelming result volume) are
// injected at the observed rates in both arms.
func RunUserStudy(env StudyEnvironment, cfg StudyConfig) StudyResult {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var res StudyResult

	// T1's "20 given concepts": popular treated conditions.
	given := topTreated(env, 20)
	answerable, unanswerable := splitAnswerable(env)

	for p := 0; p < cfg.Participants; p++ {
		for q := 0; q < cfg.T1Questions; q++ {
			target := given[rng.Intn(len(given))]
			g1 := gradeQuestion(env, env.WithQR, rng, target, true)
			g2 := gradeQuestion(env, env.WithoutQR, rng, target, false)
			res.WithQR.T1.add(g1)
			res.WithoutQR.T1.add(g2)
		}
		for q := 0; q < cfg.T2Questions; q++ {
			var target eks.ConceptID
			answerableTarget := true
			if len(unanswerable) > 0 && rng.Float64() < cfg.UnanswerableProb {
				target = unanswerable[rng.Intn(len(unanswerable))]
				answerableTarget = false
			} else {
				target = answerable[rng.Intn(len(answerable))]
			}
			g1 := gradeQuestion(env, env.WithQR, rng, target, true)
			g2 := gradeQuestion(env, env.WithoutQR, rng, target, false)
			if !answerableTarget {
				// The expected answer is simply not in the KB: even a good
				// relaxed alternative leaves the participant short of what
				// they asked for (the paper's "7 incidences in which the
				// expected answers are not contained in the given KB").
				g1 -= 2
				if g1 < 1 {
					g1 = 1
				}
			}
			res.WithQR.T2.add(g1)
			res.WithoutQR.T2.add(g2)
		}
	}
	return res
}

// topTreated returns the n most popular treated concepts.
func topTreated(env StudyEnvironment, n int) []eks.ConceptID {
	type pc struct {
		id  eks.ConceptID
		pop float64
	}
	var list []pc
	for cid := range env.Oracle.Med.Treated {
		list = append(list, pc{id: cid, pop: env.Oracle.Med.Popularity[cid]})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].pop != list[j].pop {
			return list[i].pop > list[j].pop
		}
		return list[i].id < list[j].id
	})
	if n > len(list) {
		n = len(list)
	}
	out := make([]eks.ConceptID, 0, n)
	for _, x := range list[:n] {
		out = append(out, x.id)
	}
	return out
}

// splitAnswerable partitions the world's findings into those with KB data
// and those the KB cannot answer at all.
func splitAnswerable(env StudyEnvironment) (answerable, unanswerable []eks.ConceptID) {
	for _, cid := range env.Oracle.World.Findings {
		if env.Oracle.Med.Treated[cid] || env.Oracle.Med.Caused[cid] {
			answerable = append(answerable, cid)
		} else if !env.Flagged[cid] {
			unanswerable = append(unanswerable, cid)
		}
	}
	sort.Slice(answerable, func(i, j int) bool { return answerable[i] < answerable[j] })
	sort.Slice(unanswerable, func(i, j int) bool { return unanswerable[i] < unanswerable[j] })
	return answerable, unanswerable
}

// gradeQuestion runs one question through one conversation arm and returns
// the participant's grade.
func gradeQuestion(env StudyEnvironment, conv *dialog.Conversation, rng *rand.Rand, target eks.ConceptID, qrArm bool) int {
	conv.Reset()
	ctx := questionContext(env, target)
	failures := 0
	overwhelmed := false
	const maxAttempts = 5
	success := false
	// A share of participants only knows the condition colloquially and
	// cannot rephrase into the KB's terminology no matter how often the
	// system fails them — the paper's "pyelectasia" situation.
	knowsCanonical := rng.Float64() < 0.65
	for attempt := 0; attempt < maxAttempts; attempt++ {
		term := termForAttempt(env, rng, target, attempt, knowsCanonical)
		resp := conv.Ask(fmt.Sprintf(questionTemplate(ctx), term))
		ok, extra, many := judgeResponse(env, conv, resp, target, ctx)
		if many {
			overwhelmed = true
		}
		if ok {
			success = true
			failures += extra
			break
		}
		failures++
	}
	grade := 5 - failures
	if !success {
		grade = 1
	}
	// Orthogonal incidents at the paper's observed rates (Section 7.2):
	// conversational-flow complaints (11/400-ish), unexplained low grades
	// (10), and information overload on expanded results (6, QR arm).
	switch {
	case rng.Float64() < 0.10:
		grade -= 1 + rng.Intn(2) // flow complaint
	case rng.Float64() < 0.05:
		grade = 1 + rng.Intn(3) // unexplained low grade
	}
	if qrArm && overwhelmed && rng.Float64() < 0.4 {
		grade--
	}
	if grade < 1 {
		grade = 1
	}
	if grade > 5 {
		grade = 5
	}
	return grade
}

// questionContext picks the context a participant would ask the target in.
func questionContext(env StudyEnvironment, target eks.ConceptID) *ontology.Context {
	if env.Oracle.Med.Treated[target] || !env.Oracle.Med.Caused[target] {
		return &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	}
	return &ontology.Context{Domain: "Risk", Relationship: "hasFinding", Range: "Finding"}
}

func questionTemplate(ctx *ontology.Context) string {
	if ctx.Domain == "Risk" {
		return "what drugs cause %s"
	}
	return "what drugs treat %s"
}

// termForAttempt returns the surface form a participant uses: the first
// attempt mixes canonical names with colloquial variants; rephrasing moves
// toward the canonical name, as real users do when a system fails them.
func termForAttempt(env StudyEnvironment, rng *rand.Rand, target eks.ConceptID, attempt int, knowsCanonical bool) string {
	concept, _ := env.Oracle.World.Graph.Concept(target)
	r := rng.Float64()
	if !knowsCanonical {
		return colloquialTerm(env, rng, target)
	}
	if attempt >= 1 {
		// Rephrasing drifts toward official terminology, but users do not
		// reliably know the canonical name on the first retries.
		canonicalProb := 0.3 + 0.15*float64(attempt-1)
		if r < canonicalProb || len(concept.Synonyms) == 0 {
			return concept.Name
		}
		return concept.Synonyms[rng.Intn(len(concept.Synonyms))]
	}
	latent := env.Oracle.World.Latent[target]
	switch {
	case r < 0.30:
		return concept.Name
	case r < 0.45 && len(concept.Synonyms) > 0:
		return concept.Synonyms[rng.Intn(len(concept.Synonyms))]
	case r < 0.70 && len(latent) > 0:
		return latent[rng.Intn(len(latent))]
	case r < 0.85:
		return typo(rng, concept.Name)
	default:
		return "the condition my doctor calls " + concept.Name // verbose phrasing
	}
}

// colloquialTerm picks a non-canonical surface form; participants who do
// not know the official terminology cycle through these.
func colloquialTerm(env StudyEnvironment, rng *rand.Rand, target eks.ConceptID) string {
	concept, _ := env.Oracle.World.Graph.Concept(target)
	var options []string
	options = append(options, concept.Synonyms...)
	options = append(options, env.Oracle.World.Latent[target]...)
	if len(options) == 0 {
		return typo(rng, concept.Name)
	}
	return options[rng.Intn(len(options))]
}

// typo corrupts one interior letter.
func typo(rng *rand.Rand, name string) string {
	runes := []rune(name)
	if len(runes) < 5 {
		return name
	}
	pos := 1 + rng.Intn(len(runes)-2)
	if runes[pos] == ' ' {
		pos--
	}
	runes[pos] = 'a' + rune(rng.Intn(26))
	return string(runes)
}

// judgeResponse decides whether the participant is satisfied by the turn:
// either direct answers arrived, or a relaxed suggestion relevant to the
// target led to answers after picking it. many reports information
// overload (a large expanded result set).
func judgeResponse(env StudyEnvironment, conv *dialog.Conversation, resp dialog.Response, target eks.ConceptID, ctx *ontology.Context) (ok bool, extraCost int, many bool) {
	many = len(resp.Related) > 5 || len(resp.Suggestions) > 5
	if resp.Understood && len(resp.Answers) > 0 {
		return true, 0, many
	}
	if len(resp.Suggestions) > 0 {
		// The participant scans the suggestions for one they consider
		// related to their target. Going through the menu is an extra
		// interaction: under the paper's grading protocol that is not a
		// first-shot correct response, so it costs a point.
		for pos, name := range resp.Suggestions {
			for _, cid := range env.Oracle.World.Graph.LookupName(name) {
				if env.Oracle.Relevant(target, cid, ctx) {
					follow := conv.Ask(name)
					cost := 0
					if pos >= 2 {
						cost = 1 // digging deep into the menu reads as a failed shot
					}
					return len(follow.Answers) > 0, cost, many
				}
			}
		}
	}
	return false, 0, many
}

// FormatStudy renders the study result like the paper's Table 3.
func FormatStudy(res StudyResult) string {
	labels := []string{
		"1 (Very dissatisfied)", "2 (Dissatisfied)", "3 (Okay)",
		"4 (Satisfied)", "5 (Very satisfied)",
	}
	rows := make([][]string, 0, 6)
	for g := 1; g <= 5; g++ {
		rows = append(rows, []string{
			labels[g-1],
			fmt.Sprintf("%.2f%%", res.WithQR.T1.Percent(g)),
			fmt.Sprintf("%.2f%%", res.WithQR.T2.Percent(g)),
			fmt.Sprintf("%.2f%%", res.WithoutQR.T1.Percent(g)),
			fmt.Sprintf("%.2f%%", res.WithoutQR.T2.Percent(g)),
		})
	}
	rows = append(rows, []string{
		"AVG",
		fmt.Sprintf("%.2f", res.WithQR.T1.Average()),
		fmt.Sprintf("%.2f", res.WithQR.T2.Average()),
		fmt.Sprintf("%.2f", res.WithoutQR.T1.Average()),
		fmt.Sprintf("%.2f", res.WithoutQR.T2.Average()),
	})
	return FormatTable("Table 3: Watson-Assistant-style dialogue with and without QR",
		[]string{"Score", "QR T1", "QR T2", "no-QR T1", "no-QR T2"}, rows)
}
