package eval

import (
	"math"
	"math/rand"
	"sort"
)

// CI is a bootstrap confidence interval over a per-query metric.
type CI struct {
	Mean       float64
	Low, High  float64 // the (1-Level)/2 and 1-(1-Level)/2 quantiles
	Level      float64 // e.g. 0.95
	Resamples  int
	SampleSize int
}

// BootstrapCI computes a percentile-bootstrap confidence interval for the
// mean of per-query values: the paper reports point estimates over 100
// queries; the interval makes the reproduction's comparisons honest about
// sampling noise (is QR's lead over QR-no-context bigger than seed luck?).
func BootstrapCI(values []float64, resamples int, level float64, seed int64) CI {
	n := len(values)
	ci := CI{Level: level, Resamples: resamples, SampleSize: n}
	if n == 0 {
		return ci
	}
	if resamples <= 0 {
		resamples = 2000
		ci.Resamples = resamples
	}
	if level <= 0 || level >= 1 {
		level = 0.95
		ci.Level = level
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	ci.Mean = sum / float64(n)

	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	for i := range means {
		s := 0.0
		for j := 0; j < n; j++ {
			s += values[rng.Intn(n)]
		}
		means[i] = s / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	ci.Low = quantile(means, alpha)
	ci.High = quantile(means, 1-alpha)
	return ci
}

// quantile returns the q-quantile of sorted values by linear interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// PairedBootstrapDelta bootstraps the mean difference a-b over paired
// per-query values (same queries, two methods). A CI excluding zero means
// the methods differ beyond resampling noise.
func PairedBootstrapDelta(a, b []float64, resamples int, level float64, seed int64) CI {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	deltas := make([]float64, n)
	for i := 0; i < n; i++ {
		deltas[i] = a[i] - b[i]
	}
	return BootstrapCI(deltas, resamples, level, seed)
}
