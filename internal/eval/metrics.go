// Package eval implements the paper's experimental apparatus (Section 7):
// precision/recall/F1 metrics, the relevance oracle standing in for the 20
// subject-matter experts, the mapping-accuracy experiment (Table 1), the
// overall-effectiveness experiment (Table 2), and the simulated user study
// (Table 3).
package eval

import "fmt"

// PRF bundles precision, recall and F1, each in percent as the paper
// reports them.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
}

// NewPRF computes the percentages from true positives, false positives and
// false negatives. Degenerate denominators yield zero components.
func NewPRF(tp, fp, fn int) PRF {
	var p, r float64
	if tp+fp > 0 {
		p = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r = float64(tp) / float64(tp+fn)
	}
	return fromRates(p, r)
}

func fromRates(p, r float64) PRF {
	f1 := 0.0
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	return PRF{Precision: 100 * p, Recall: 100 * r, F1: 100 * f1}
}

// MeanPRF averages per-query precision and recall rates (given in [0,1])
// and recomputes F1 from the means — the macro-averaging convention of
// IR-style P@k/R@k reporting.
func MeanPRF(precisions, recalls []float64) PRF {
	if len(precisions) == 0 || len(precisions) != len(recalls) {
		return PRF{}
	}
	var sp, sr float64
	for i := range precisions {
		sp += precisions[i]
		sr += recalls[i]
	}
	n := float64(len(precisions))
	return fromRates(sp/n, sr/n)
}

// String renders the triple like the paper's tables.
func (m PRF) String() string {
	return fmt.Sprintf("P=%.2f R=%.2f F1=%.2f", m.Precision, m.Recall, m.F1)
}

// PrecisionRecallAtK computes the per-query P@k and R@k rates (in [0,1])
// for one ranked result list against a relevant set: precision is the
// fraction of relevant results among the returned top k (the paper's
// "number of relevant results among the top 10 returned concepts", so the
// denominator is k when at least k results came back, otherwise the number
// returned); recall divides by the total number of relevant items.
// totalRelevant == 0 yields recall 1 when nothing was expected.
func PrecisionRecallAtK(ranked []bool, k, totalRelevant int) (p, r float64) {
	if k <= 0 {
		return 0, 0
	}
	n := len(ranked)
	if n > k {
		n = k
	}
	hits := 0
	for i := 0; i < n; i++ {
		if ranked[i] {
			hits++
		}
	}
	if n > 0 {
		p = float64(hits) / float64(n)
	}
	if totalRelevant > 0 {
		r = float64(hits) / float64(totalRelevant)
	} else {
		r = 1
	}
	if r > 1 {
		r = 1
	}
	return p, r
}
