package eval

import (
	"strings"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/dialog"
	"medrelax/internal/match"
	"medrelax/internal/medkb"
	"medrelax/internal/nlq"
)

// buildStudyEnv assembles a small but complete two-arm environment.
func buildStudyEnv(t *testing.T) (StudyEnvironment, *core.Ingestion, *core.Relaxer) {
	t.Helper()
	w, med, o := buildOracleWorld(t)
	corp := medkb.BuildCorpus(w, med, medkb.CorpusConfig{Seed: 21})
	mapper := match.NewCombined(match.NewExact(w.Graph), match.NewEdit(w.Graph, 0))
	ing, err := core.Ingest(med.Ontology, med.Store, w.Graph, corp, mapper, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sim := core.NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	relaxer := core.NewRelaxer(ing, sim, mapper, core.RelaxOptions{Radius: 3, DynamicRadius: true, IncludeSelf: true})

	newConv := func(withQR bool) *dialog.Conversation {
		examples := dialog.GenerateTrainingExamples(med.Ontology, med.Store, 1, 6)
		classifier, err := dialog.TrainIntentClassifier(examples)
		if err != nil {
			t.Fatal(err)
		}
		extractor := dialog.NewMentionExtractor(med.Store, w.Graph.NameKeys())
		if !withQR {
			return dialog.NewConversation(med.Store, med.Ontology, classifier, extractor, nil, nil)
		}
		return dialog.NewConversation(med.Store, med.Ontology, classifier, extractor, relaxer, ing)
	}
	env := StudyEnvironment{
		WithQR:    newConv(true),
		WithoutQR: newConv(false),
		Oracle:    o,
		Flagged:   ing.Flagged,
	}
	return env, ing, relaxer
}

func TestRunUserStudySmall(t *testing.T) {
	env, _, _ := buildStudyEnv(t)
	res := RunUserStudy(env, StudyConfig{Seed: 3, Participants: 4, T1Questions: 6, T2Questions: 3})
	if res.WithQR.T1.Total() != 24 || res.WithQR.T2.Total() != 12 {
		t.Fatalf("totals = %d/%d", res.WithQR.T1.Total(), res.WithQR.T2.Total())
	}
	// Every grade is in [1,5] by construction (GradeDist clamps), and the
	// QR arm must not lose to the no-QR arm on the combined average.
	qr := (res.WithQR.T1.Average() + res.WithQR.T2.Average()) / 2
	no := (res.WithoutQR.T1.Average() + res.WithoutQR.T2.Average()) / 2
	if qr < no {
		t.Errorf("QR average %.2f below no-QR %.2f on the small world", qr, no)
	}
	// Deterministic per seed.
	res2 := RunUserStudy(env, StudyConfig{Seed: 3, Participants: 4, T1Questions: 6, T2Questions: 3})
	if res.WithQR.T1 != res2.WithQR.T1 || res.WithoutQR.T2 != res2.WithoutQR.T2 {
		t.Error("study not deterministic for a fixed seed")
	}
}

func TestNLQWorkloadGeneration(t *testing.T) {
	env, ing, _ := buildStudyEnv(t)
	qs := GenerateNLQWorkload(env.Oracle, ing.Flagged, NLQConfig{Seed: 5, Questions: 60})
	if len(qs) != 60 {
		t.Fatalf("questions = %d", len(qs))
	}
	kinds := map[string]int{}
	for _, q := range qs {
		if q.Text == "" || q.Target == 0 {
			t.Fatalf("malformed question %+v", q)
		}
		if !strings.HasPrefix(q.Text, "which drugs treat ") {
			t.Fatalf("unexpected phrasing %q", q.Text)
		}
		kinds[q.Kind]++
	}
	for _, k := range []string{"canonical", "unknown-concept"} {
		if kinds[k] == 0 {
			t.Errorf("no %s questions in %v", k, kinds)
		}
	}
	// Unknown-concept questions target unflagged concepts.
	for _, q := range qs {
		if q.Kind == "unknown-concept" && ing.Flagged[q.Target] {
			t.Fatalf("unknown-concept question targets flagged %d", q.Target)
		}
	}
}

func TestRunNLQExperimentSmall(t *testing.T) {
	env, ing, relaxer := buildStudyEnv(t)
	med := env.Oracle.Med
	withQR := nlq.NewSystem(med.Ontology, med.Store, relaxer, ing)
	withoutQR := nlq.NewSystem(med.Ontology, med.Store, nil, nil)
	res := RunNLQExperiment(env.Oracle, ing.Flagged, withQR, withoutQR, NLQConfig{Seed: 5, Questions: 60})
	if res.WithQR.Total != 60 {
		t.Fatalf("total = %d", res.WithQR.Total)
	}
	if res.WithQR.Answered < res.WithoutQR.Answered {
		t.Errorf("QR answered %d < no-QR %d", res.WithQR.Answered, res.WithoutQR.Answered)
	}
	if res.WithQR.Correct > res.WithQR.Answered || res.WithoutQR.Correct > res.WithoutQR.Answered {
		t.Error("correct cannot exceed answered")
	}
	s := FormatNLQ(res)
	if !strings.Contains(s, "answered") || !strings.Contains(s, "with QR") {
		t.Errorf("format = %s", s)
	}
	// Rates well-defined.
	if res.WithQR.AnsweredRate() < 0 || res.WithQR.AnsweredRate() > 1 {
		t.Errorf("rate = %v", res.WithQR.AnsweredRate())
	}
	var empty NLQOutcome
	if empty.AnsweredRate() != 0 || empty.CorrectRate() != 0 {
		t.Error("empty outcome rates must be 0")
	}
}
