package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"medrelax/internal/eks"
	"medrelax/internal/nlq"
)

// The NLQ experiment quantifies the paper's title claim — expanding the
// set of queries a medical KB can answer — on the natural language query
// pipeline of Section 6.2: the same generated question workload is run
// through the NLQ system with and without relaxation, and a question
// counts as answered when the pipeline produces a non-empty result set
// whose answers are correct for the target concept.

// NLQConfig controls the workload.
type NLQConfig struct {
	// Seed drives question generation.
	Seed int64
	// Questions is the workload size. Default 200.
	Questions int
	// ColloquialShare is the fraction of questions phrased with
	// non-canonical terminology (latent variants, synonyms). Default 0.45.
	ColloquialShare float64
	// UnknownShare is the fraction of questions about concepts absent from
	// the KB entirely, answerable only through relaxation. Default 0.15.
	UnknownShare float64
}

func (c NLQConfig) withDefaults() NLQConfig {
	if c.Questions <= 0 {
		c.Questions = 200
	}
	if c.ColloquialShare <= 0 {
		c.ColloquialShare = 0.45
	}
	if c.UnknownShare <= 0 {
		c.UnknownShare = 0.15
	}
	return c
}

// NLQQuestion is one generated workload item.
type NLQQuestion struct {
	Text string
	// Target is the concept the question is really about.
	Target eks.ConceptID
	// Kind labels the phrasing class for the breakdown.
	Kind string
}

// NLQOutcome aggregates one system arm's results.
type NLQOutcome struct {
	Answered, Correct, Total int
	// ByKind breaks the correct counts down by phrasing class.
	ByKind map[string]int
}

// AnsweredRate returns the share of questions with any answer.
func (o NLQOutcome) AnsweredRate() float64 {
	if o.Total == 0 {
		return 0
	}
	return float64(o.Answered) / float64(o.Total)
}

// CorrectRate returns the share of questions answered correctly.
func (o NLQOutcome) CorrectRate() float64 {
	if o.Total == 0 {
		return 0
	}
	return float64(o.Correct) / float64(o.Total)
}

// NLQResult is the two-arm comparison.
type NLQResult struct {
	WithQR, WithoutQR NLQOutcome
	Questions         []NLQQuestion
}

// GenerateNLQWorkload builds the question set: canonical, colloquial
// (synonym/latent phrasing of covered concepts) and unknown (concepts
// without KB instances) treatment questions.
func GenerateNLQWorkload(o *Oracle, flagged map[eks.ConceptID]bool, cfg NLQConfig) []NLQQuestion {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	var treated, unknown []eks.ConceptID
	for _, cid := range o.World.Findings {
		switch {
		case o.Med.Treated[cid]:
			treated = append(treated, cid)
		case !flagged[cid]:
			unknown = append(unknown, cid)
		}
	}
	sort.Slice(treated, func(i, j int) bool { return treated[i] < treated[j] })
	sort.Slice(unknown, func(i, j int) bool { return unknown[i] < unknown[j] })
	if len(treated) == 0 {
		return nil
	}

	out := make([]NLQQuestion, 0, cfg.Questions)
	for i := 0; i < cfg.Questions; i++ {
		r := rng.Float64()
		switch {
		case r < cfg.UnknownShare && len(unknown) > 0:
			target := unknown[rng.Intn(len(unknown))]
			c, _ := o.World.Graph.Concept(target)
			out = append(out, NLQQuestion{
				Text:   "which drugs treat " + c.Name,
				Target: target,
				Kind:   "unknown-concept",
			})
		case r < cfg.UnknownShare+cfg.ColloquialShare:
			target := treated[rng.Intn(len(treated))]
			c, _ := o.World.Graph.Concept(target)
			term := c.Name
			kind := "canonical" // degrade gracefully when no variant exists
			options := append(append([]string{}, c.Synonyms...), o.World.Latent[target]...)
			if len(options) > 0 {
				term = options[rng.Intn(len(options))]
				kind = "colloquial"
			}
			out = append(out, NLQQuestion{Text: "which drugs treat " + term, Target: target, Kind: kind})
		default:
			target := treated[rng.Intn(len(treated))]
			c, _ := o.World.Graph.Concept(target)
			out = append(out, NLQQuestion{Text: "which drugs treat " + c.Name, Target: target, Kind: "canonical"})
		}
	}
	return out
}

// RunNLQExperiment executes the workload on both arms. An answer set is
// judged correct when non-empty and every returned drug treats some
// finding the oracle accepts as a relaxation of the target (or the target
// itself).
func RunNLQExperiment(o *Oracle, flagged map[eks.ConceptID]bool, withQR, withoutQR *nlq.System, cfg NLQConfig) NLQResult {
	questions := GenerateNLQWorkload(o, flagged, cfg)
	res := NLQResult{Questions: questions}
	res.WithQR = runNLQArm(o, withQR, questions)
	res.WithoutQR = runNLQArm(o, withoutQR, questions)
	return res
}

func runNLQArm(o *Oracle, system *nlq.System, questions []NLQQuestion) NLQOutcome {
	out := NLQOutcome{Total: len(questions), ByKind: map[string]int{}}
	for _, q := range questions {
		ans, err := system.Answer(q.Text)
		if err != nil || len(ans.Results) == 0 {
			continue
		}
		out.Answered++
		if nlqAnswerCorrect(o, q.Target, ans) {
			out.Correct++
			out.ByKind[q.Kind]++
		}
	}
	return out
}

// nlqAnswerCorrect checks that the executed query was grounded in findings
// the oracle accepts for the target.
func nlqAnswerCorrect(o *Oracle, target eks.ConceptID, ans nlq.Answer) bool {
	// The structured query's terminal instances are the grounding: each
	// must map to a concept relevant to the target.
	grounded := 0
	for _, iid := range ans.Query.Terminal {
		cid, ok := o.Med.Gold[iid]
		if !ok {
			continue
		}
		if cid == target || o.Relevant(target, cid, nil) {
			grounded++
		}
	}
	return grounded > 0
}

// FormatNLQ renders the experiment like the paper's prose comparison.
func FormatNLQ(res NLQResult) string {
	rows := [][]string{
		{"answered", fmt.Sprintf("%.1f%%", 100*res.WithQR.AnsweredRate()), fmt.Sprintf("%.1f%%", 100*res.WithoutQR.AnsweredRate())},
		{"correct", fmt.Sprintf("%.1f%%", 100*res.WithQR.CorrectRate()), fmt.Sprintf("%.1f%%", 100*res.WithoutQR.CorrectRate())},
	}
	kinds := map[string]bool{}
	for k := range res.WithQR.ByKind {
		kinds[k] = true
	}
	for k := range res.WithoutQR.ByKind {
		kinds[k] = true
	}
	var sorted []string
	for k := range kinds {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		rows = append(rows, []string{"correct: " + k,
			fmt.Sprintf("%d", res.WithQR.ByKind[k]),
			fmt.Sprintf("%d", res.WithoutQR.ByKind[k])})
	}
	return FormatTable("NLQ query-answerability experiment (Section 6.2 integration)",
		[]string{"Metric", "with QR", "without QR"}, rows)
}
