package eval

import (
	"fmt"
	"sort"
	"strings"

	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/kb"
	"medrelax/internal/match"
	"medrelax/internal/medkb"
	"medrelax/internal/ontology"
)

// MapperScore is one row of Table 1.
type MapperScore struct {
	Method string
	PRF
}

// EvaluateMappers reproduces Table 1: every mapper maps every finding
// instance of the MED, scored against the generator's gold mappings. A
// mapping counts as a true positive when it hits the gold concept, a false
// positive when it hits any other concept, and a false negative when the
// mapper returns nothing (every finding instance has a gold concept).
func EvaluateMappers(med *medkb.MED, mappers []match.Mapper) []MapperScore {
	var instances []kb.InstanceID
	for iid := range med.Gold {
		instances = append(instances, iid)
	}
	sort.Slice(instances, func(i, j int) bool { return instances[i] < instances[j] })

	var out []MapperScore
	for _, m := range mappers {
		tp, fp, fn := 0, 0, 0
		for _, iid := range instances {
			inst, _ := med.Store.Instance(iid)
			got, ok := m.Map(inst.Name)
			switch {
			case !ok:
				fn++
			case got == med.Gold[iid]:
				tp++
			default:
				fp++
			}
		}
		out = append(out, MapperScore{Method: m.Name(), PRF: NewPRF(tp, fp, fn)})
	}
	return out
}

// Query is one evaluation query for Table 2: a surface term, its gold
// external concept, and the query context.
type Query struct {
	Term    string
	Concept eks.ConceptID
	Ctx     *ontology.Context
}

// SelectQueries picks the n most "commonly used" condition concepts — the
// covered findings with the highest popularity — and pairs each with the
// context its KB data supports (indication first, risk otherwise), mirroring
// the paper's 100 commonly used concepts of medical conditions.
func SelectQueries(med *medkb.MED, o *Oracle, n int) []Query {
	type popConcept struct {
		id  eks.ConceptID
		pop float64
	}
	var pcs []popConcept
	for cid := range med.FindingInstance {
		pcs = append(pcs, popConcept{id: cid, pop: med.Popularity[cid]})
	}
	sort.Slice(pcs, func(i, j int) bool {
		if pcs[i].pop != pcs[j].pop {
			return pcs[i].pop > pcs[j].pop
		}
		return pcs[i].id < pcs[j].id
	})
	ctxInd := &ontology.Context{Domain: "Indication", Relationship: "hasFinding", Range: "Finding"}
	ctxRisk := &ontology.Context{Domain: "Risk", Relationship: "hasFinding", Range: "Finding"}
	var out []Query
	for _, pc := range pcs {
		if len(out) == n {
			break
		}
		concept, ok := o.World.Graph.Concept(pc.id)
		if !ok {
			continue
		}
		ctx := ctxInd
		if !med.Treated[pc.id] {
			if !med.Caused[pc.id] {
				continue
			}
			ctx = ctxRisk
		}
		out = append(out, Query{Term: concept.Name, Concept: pc.id, Ctx: ctx})
	}
	return out
}

// MethodScore is one row of Table 2.
type MethodScore struct {
	Method string
	PRF
}

// EvaluateMethods reproduces Table 2: every method relaxes every query to
// its top-k concepts; the oracle judges each returned concept, and P@k /
// R@k are macro-averaged over queries. The universe for recall is the set
// of flagged external concepts.
func EvaluateMethods(methods []core.Method, queries []Query, o *Oracle, flagged map[eks.ConceptID]bool, k int) []MethodScore {
	var out []MethodScore
	for _, m := range methods {
		var ps, rs []float64
		for _, q := range queries {
			relevant := o.RelevantSet(q.Concept, q.Ctx, flagged)
			got := m.RelaxConcepts(q.Term, q.Ctx, k)
			judged := make([]bool, len(got))
			for i, cid := range got {
				judged[i] = cid != q.Concept && o.Relevant(q.Concept, cid, q.Ctx)
			}
			p, r := PrecisionRecallAtK(judged, k, len(relevant))
			ps = append(ps, p)
			rs = append(rs, r)
		}
		out = append(out, MethodScore{Method: m.Name(), PRF: MeanPRF(ps, rs)})
	}
	return out
}

// PerQueryF1 evaluates one method query by query, returning the per-query
// F1 values the bootstrap utilities resample. The inputs mirror
// EvaluateMethods.
func PerQueryF1(m core.Method, queries []Query, o *Oracle, flagged map[eks.ConceptID]bool, k int) []float64 {
	out := make([]float64, 0, len(queries))
	for _, q := range queries {
		relevant := o.RelevantSet(q.Concept, q.Ctx, flagged)
		got := m.RelaxConcepts(q.Term, q.Ctx, k)
		judged := make([]bool, len(got))
		for i, cid := range got {
			judged[i] = cid != q.Concept && o.Relevant(q.Concept, cid, q.Ctx)
		}
		p, r := PrecisionRecallAtK(judged, k, len(relevant))
		f1 := 0.0
		if p+r > 0 {
			f1 = 2 * p * r / (p + r)
		}
		out = append(out, f1)
	}
	return out
}

// FormatTable renders rows as an aligned text table with the given header,
// matching the layout of the paper's tables for side-by-side comparison.
func FormatTable(title string, header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
