// Package boot assembles a servable backend from a persisted ingestion
// bundle — the cold-start path shared by cmd/kbserver (startup and hot
// reload) and cmd/chaos (crash-safety harness). Keeping it in one place
// guarantees the chaos harness exercises exactly the loader production
// runs, fault sites included.
package boot

import (
	"context"
	"log"
	"time"

	"medrelax/internal/core"
	"medrelax/internal/match"
	"medrelax/internal/persist"
	"medrelax/internal/server"
)

// LoadBackend serves relaxation from a saved ingestion bundle: no world
// regeneration, no embedding training. /chat is unavailable because
// conversations need the full synthetic world, which the bundle
// deliberately omits. The same path backs POST /admin/reload and SIGHUP,
// so pushing a new bundle file and poking the endpoint swaps worlds
// without a restart. Errors keep persist's typing: a corrupt file wraps
// persist.ErrCorruptBundle, a missing one fs.ErrNotExist.
func LoadBackend(path string) (server.Backend, error) {
	loadStart := time.Now()
	ing, err := persist.LoadFile(path)
	if err != nil {
		return nil, err
	}
	if err := persist.ValidateForServing(ing); err != nil {
		return nil, err
	}
	loadDur := time.Since(loadStart)
	freezeStart := time.Now()
	ing.Graph.Freeze()
	log.Printf("bundle loaded: %d EKS concepts, %d instances (decode+restore %s, freeze %s)",
		ing.Graph.Len(), ing.Store.Len(),
		loadDur.Round(time.Millisecond), time.Since(freezeStart).Round(time.Millisecond))
	mapper := match.NewCombined(match.NewExact(ing.Graph), match.NewEdit(ing.Graph, 0), match.NewLookupService(ing.Graph))
	sim := core.NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	relaxer := core.NewRelaxer(ing, sim, mapper, core.RelaxOptions{Radius: 3, DynamicRadius: true})
	backend := &server.RelaxerBackend{Relaxer: relaxer, Ing: ing}
	// Probe one flagged term end to end so a structurally valid bundle
	// that cannot actually answer fails here, not in production traffic.
	if terms := backend.Terms(1); len(terms) > 0 {
		if _, err := backend.Relax(context.Background(), terms[0], "", 1); err != nil {
			return nil, err
		}
	}
	return backend, nil
}
