package ontology

import "testing"

// figure1 builds the Figure 1 ontology fragment from the paper.
func figure1(t *testing.T) *Ontology {
	t.Helper()
	o := New()
	concepts := []Concept{
		{Name: "Drug"},
		{Name: "Indication"},
		{Name: "Risk"},
		{Name: "Finding"},
		{Name: "BlackBoxWarning", Parent: "Risk"},
		{Name: "AdverseEffect", Parent: "Risk"},
		{Name: "ContraIndication", Parent: "Risk"},
	}
	for _, c := range concepts {
		if err := o.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	rels := []Relationship{
		{Name: "treat", Domain: "Drug", Range: "Indication"},
		{Name: "cause", Domain: "Drug", Range: "Risk"},
		{Name: "hasFinding", Domain: "Indication", Range: "Finding"},
		{Name: "hasFinding", Domain: "Risk", Range: "Finding"},
	}
	for _, r := range rels {
		if err := o.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func TestAddConceptErrors(t *testing.T) {
	o := New()
	if err := o.AddConcept(Concept{Name: ""}); err == nil {
		t.Error("empty name must be rejected")
	}
	if err := o.AddConcept(Concept{Name: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddConcept(Concept{Name: "A"}); err == nil {
		t.Error("duplicate must be rejected")
	}
	if err := o.AddConcept(Concept{Name: "B", Parent: "missing"}); err == nil {
		t.Error("unknown parent must be rejected")
	}
}

func TestAddRelationshipErrors(t *testing.T) {
	o := New()
	if err := o.AddConcept(Concept{Name: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddRelationship(Relationship{Name: "", Domain: "A", Range: "A"}); err == nil {
		t.Error("empty name must be rejected")
	}
	if err := o.AddRelationship(Relationship{Name: "r", Domain: "X", Range: "A"}); err == nil {
		t.Error("unknown domain must be rejected")
	}
	if err := o.AddRelationship(Relationship{Name: "r", Domain: "A", Range: "X"}); err == nil {
		t.Error("unknown range must be rejected")
	}
	if err := o.AddRelationship(Relationship{Name: "r", Domain: "A", Range: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddRelationship(Relationship{Name: "r", Domain: "A", Range: "A"}); err == nil {
		t.Error("duplicate relationship must be rejected")
	}
}

func TestContexts(t *testing.T) {
	o := figure1(t)
	ctxs := o.Contexts()
	if len(ctxs) != 4 {
		t.Fatalf("got %d contexts, want 4: %v", len(ctxs), ctxs)
	}
	want := map[string]bool{
		"Drug-treat-Indication":         true,
		"Drug-cause-Risk":               true,
		"Indication-hasFinding-Finding": true,
		"Risk-hasFinding-Finding":       true,
	}
	for _, c := range ctxs {
		if !want[c.String()] {
			t.Errorf("unexpected context %s", c)
		}
	}
}

func TestContextsForRange(t *testing.T) {
	o := figure1(t)
	ctxs := o.ContextsForRange("Finding")
	if len(ctxs) != 2 {
		t.Fatalf("ContextsForRange(Finding) = %v, want 2 contexts", ctxs)
	}
	got := map[string]bool{}
	for _, c := range ctxs {
		got[c.String()] = true
	}
	if !got["Indication-hasFinding-Finding"] || !got["Risk-hasFinding-Finding"] {
		t.Errorf("ContextsForRange(Finding) = %v", ctxs)
	}
	// A subconcept of Risk participates in contexts whose range is Risk.
	ctxs = o.ContextsForRange("AdverseEffect")
	if len(ctxs) != 1 || ctxs[0].String() != "Drug-cause-Risk" {
		t.Errorf("ContextsForRange(AdverseEffect) = %v", ctxs)
	}
}

func TestHierarchy(t *testing.T) {
	o := figure1(t)
	kids := o.Children("Risk")
	if len(kids) != 3 {
		t.Fatalf("Children(Risk) = %v", kids)
	}
	if !o.IsSubConceptOf("AdverseEffect", "Risk") {
		t.Error("AdverseEffect must be subconcept of Risk")
	}
	if !o.IsSubConceptOf("Risk", "Risk") {
		t.Error("a concept is a subconcept of itself")
	}
	if o.IsSubConceptOf("Risk", "AdverseEffect") {
		t.Error("subsumption must not be inverted")
	}
	if o.IsSubConceptOf("nope", "Risk") {
		t.Error("unknown concept is not a subconcept")
	}
	desc := o.Descendants("Risk")
	if len(desc) != 3 {
		t.Errorf("Descendants(Risk) = %v", desc)
	}
	if len(o.Descendants("Drug")) != 0 {
		t.Error("Drug has no descendants")
	}
}

func TestParseContext(t *testing.T) {
	c, err := ParseContext("Indication-hasFinding-Finding")
	if err != nil {
		t.Fatal(err)
	}
	if c.Domain != "Indication" || c.Relationship != "hasFinding" || c.Range != "Finding" {
		t.Errorf("ParseContext = %+v", c)
	}
	for _, bad := range []string{"", "a-b", "a-b-c-d", "-b-c", "a--c", "a-b-"} {
		if _, err := ParseContext(bad); err == nil {
			t.Errorf("ParseContext(%q) must fail", bad)
		}
	}
}

func TestValidateAndCounts(t *testing.T) {
	o := figure1(t)
	if err := o.Validate(); err != nil {
		t.Errorf("valid ontology rejected: %v", err)
	}
	if o.ConceptCount() != 7 {
		t.Errorf("ConceptCount = %d", o.ConceptCount())
	}
	if o.RelationshipCount() != 4 {
		t.Errorf("RelationshipCount = %d", o.RelationshipCount())
	}
	names := o.ConceptNames()
	if len(names) != 7 || names[0] != "AdverseEffect" {
		t.Errorf("ConceptNames = %v", names)
	}
	if _, ok := o.Concept("Drug"); !ok {
		t.Error("Concept(Drug) missing")
	}
}
