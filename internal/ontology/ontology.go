// Package ontology models the domain ontology (TBox) of a knowledge base,
// following the paper's Section 2.1: a set of concepts, a subconcept
// hierarchy among them, and named relationships (roles) with domain
// (source) and range (destination) constraints.
//
// A query context is represented by a relationship together with its
// domain and range concepts, e.g. Indication-hasFinding-Finding. The
// Contexts method enumerates all possible contexts, implementing the
// context-generation step of Algorithm 1 (lines 1–4).
package ontology

import (
	"fmt"
	"sort"
	"strings"
)

// Concept is a class of the domain ontology, e.g. "Drug" or "Finding".
type Concept struct {
	Name string
	// Parent is the direct superconcept, or "" for top-level concepts.
	// The paper's Figure 1 uses single inheritance (e.g. AdverseEffect ⊑
	// Risk), which suffices for MED-style ontologies.
	Parent string
}

// Relationship is a role with domain and range constraints, e.g.
// {Name: "hasFinding", Domain: "Indication", Range: "Finding"}. The same
// role name may appear under several domain/range pairs.
type Relationship struct {
	Name   string
	Domain string
	Range  string
}

// Context is a relationship with its associated concepts; its string form
// is Domain-Name-Range (e.g. "Indication-hasFinding-Finding").
type Context struct {
	Domain       string
	Relationship string
	Range        string
}

// String renders the context in the paper's notation.
func (c Context) String() string {
	return c.Domain + "-" + c.Relationship + "-" + c.Range
}

// ParseContext parses the Domain-Relationship-Range notation. It fails on
// malformed input; it does not check the parts against any ontology.
func ParseContext(s string) (Context, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return Context{}, fmt.Errorf("ontology: malformed context %q (want Domain-Relationship-Range)", s)
	}
	return Context{Domain: parts[0], Relationship: parts[1], Range: parts[2]}, nil
}

// Ontology is a mutable domain ontology. The zero value is not usable;
// call New.
type Ontology struct {
	concepts   map[string]Concept
	rels       []Relationship
	relKey     map[string]bool // dedupe key domain|name|range
	relsByName map[string][]Relationship
	children   map[string][]string
}

// New returns an empty ontology.
func New() *Ontology {
	return &Ontology{
		concepts:   make(map[string]Concept),
		relKey:     make(map[string]bool),
		relsByName: make(map[string][]Relationship),
		children:   make(map[string][]string),
	}
}

// AddConcept inserts a concept. The parent, when non-empty, must already
// exist, so hierarchies are built top-down and are acyclic by construction.
func (o *Ontology) AddConcept(c Concept) error {
	if c.Name == "" {
		return fmt.Errorf("ontology: empty concept name")
	}
	if _, ok := o.concepts[c.Name]; ok {
		return fmt.Errorf("ontology: duplicate concept %q", c.Name)
	}
	if c.Parent != "" {
		if _, ok := o.concepts[c.Parent]; !ok {
			return fmt.Errorf("ontology: concept %q has unknown parent %q", c.Name, c.Parent)
		}
	}
	o.concepts[c.Name] = c
	if c.Parent != "" {
		o.children[c.Parent] = append(o.children[c.Parent], c.Name)
	}
	return nil
}

// AddRelationship inserts a relationship; both domain and range concepts
// must exist.
func (o *Ontology) AddRelationship(r Relationship) error {
	if r.Name == "" {
		return fmt.Errorf("ontology: empty relationship name")
	}
	if _, ok := o.concepts[r.Domain]; !ok {
		return fmt.Errorf("ontology: relationship %q has unknown domain %q", r.Name, r.Domain)
	}
	if _, ok := o.concepts[r.Range]; !ok {
		return fmt.Errorf("ontology: relationship %q has unknown range %q", r.Name, r.Range)
	}
	key := r.Domain + "|" + r.Name + "|" + r.Range
	if o.relKey[key] {
		return fmt.Errorf("ontology: duplicate relationship %s-%s-%s", r.Domain, r.Name, r.Range)
	}
	o.relKey[key] = true
	o.rels = append(o.rels, r)
	o.relsByName[r.Name] = append(o.relsByName[r.Name], r)
	return nil
}

// HasConcept reports whether the named concept exists.
func (o *Ontology) HasConcept(name string) bool {
	_, ok := o.concepts[name]
	return ok
}

// Concept returns the named concept.
func (o *Ontology) Concept(name string) (Concept, bool) {
	c, ok := o.concepts[name]
	return c, ok
}

// ConceptNames returns all concept names in sorted order.
func (o *Ontology) ConceptNames() []string {
	names := make([]string, 0, len(o.concepts))
	for n := range o.concepts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ConceptCount returns the number of concepts.
func (o *Ontology) ConceptCount() int { return len(o.concepts) }

// RelationshipCount returns the number of relationships.
func (o *Ontology) RelationshipCount() int { return len(o.rels) }

// RelationshipsNamed returns the relationships with the given role name,
// in insertion order. The returned slice is shared — callers must not
// modify it. Validation paths that run once per assertion use this to
// avoid the copy Relationships makes.
func (o *Ontology) RelationshipsNamed(name string) []Relationship {
	return o.relsByName[name]
}

// Relationships returns a copy of all relationships, in insertion order.
func (o *Ontology) Relationships() []Relationship {
	out := make([]Relationship, len(o.rels))
	copy(out, o.rels)
	return out
}

// Children returns the direct subconcepts of name, sorted.
func (o *Ontology) Children(name string) []string {
	cs := o.children[name]
	out := make([]string, len(cs))
	copy(out, cs)
	sort.Strings(out)
	return out
}

// Descendants returns all transitive subconcepts of name, excluding name,
// sorted.
func (o *Ontology) Descendants(name string) []string {
	var out []string
	stack := []string{name}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ch := range o.children[cur] {
			out = append(out, ch)
			stack = append(stack, ch)
		}
	}
	sort.Strings(out)
	return out
}

// IsSubConceptOf reports whether a equals b or is a transitive subconcept
// of b.
func (o *Ontology) IsSubConceptOf(a, b string) bool {
	for cur := a; cur != ""; {
		if cur == b {
			return true
		}
		c, ok := o.concepts[cur]
		if !ok {
			return false
		}
		cur = c.Parent
	}
	return false
}

// Contexts enumerates every possible context by traversing all
// relationships with their domain and range concepts (Algorithm 1,
// lines 1–4). The result is sorted by string form for determinism.
func (o *Ontology) Contexts() []Context {
	out := make([]Context, 0, len(o.rels))
	for _, r := range o.rels {
		out = append(out, Context{Domain: r.Domain, Relationship: r.Name, Range: r.Range})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// ContextsForRange returns the contexts whose range is the given concept or
// one of its superconcepts — the contexts in which an instance of that
// concept can appear as a query term (Section 5.1: "we use the
// relationships associated to a concept in the domain ontology as the
// contexts of A").
func (o *Ontology) ContextsForRange(concept string) []Context {
	var out []Context
	for _, r := range o.rels {
		if o.IsSubConceptOf(concept, r.Range) {
			out = append(out, Context{Domain: r.Domain, Relationship: r.Name, Range: r.Range})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Validate checks that all relationship endpoints exist and the hierarchy
// is acyclic (guaranteed by construction, re-checked defensively).
func (o *Ontology) Validate() error {
	for _, r := range o.rels {
		if !o.HasConcept(r.Domain) || !o.HasConcept(r.Range) {
			return fmt.Errorf("ontology: relationship %s has dangling endpoint", r.Name)
		}
	}
	for name := range o.concepts {
		seen := map[string]bool{}
		for cur := name; cur != ""; {
			if seen[cur] {
				return fmt.Errorf("ontology: hierarchy cycle at %q", cur)
			}
			seen[cur] = true
			c, ok := o.concepts[cur]
			if !ok {
				return fmt.Errorf("ontology: dangling parent %q", cur)
			}
			cur = c.Parent
		}
	}
	return nil
}
