package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/corpus"
	"medrelax/internal/dialog"
	"medrelax/internal/eks"
	"medrelax/internal/engine"
	"medrelax/internal/kb"
	"medrelax/internal/ontology"
)

// testBackend builds a small world (the dialog package's Figure 7/8 shape)
// behind an engine.Snapshot.
func testBackend(t *testing.T) *engine.Snapshot {
	t.Helper()
	o := ontology.New()
	for _, c := range []ontology.Concept{
		{Name: "Drug"}, {Name: "Indication"}, {Name: "Risk"}, {Name: "Finding"},
	} {
		if err := o.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []ontology.Relationship{
		{Name: "treat", Domain: "Drug", Range: "Indication"},
		{Name: "cause", Domain: "Drug", Range: "Risk"},
		{Name: "hasFinding", Domain: "Indication", Range: "Finding"},
		{Name: "hasFinding", Domain: "Risk", Range: "Finding"},
	} {
		if err := o.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	g := eks.New()
	for _, c := range []eks.Concept{
		{ID: 1, Name: "clinical finding"},
		{ID: 2, Name: "kidney disease"},
		{ID: 3, Name: "pyelectasia"},
		{ID: 4, Name: "fever"},
	} {
		if err := g.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]eks.ConceptID{{2, 1}, {3, 2}, {4, 1}} {
		if err := g.AddSubsumption(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetRoot(1); err != nil {
		t.Fatal(err)
	}
	store := kb.NewStore(o)
	for _, inst := range []kb.Instance{
		{ID: 1, Concept: "Drug", Name: "lisinopril"},
		{ID: 10, Concept: "Indication", Name: "ind-kidney"},
		{ID: 20, Concept: "Finding", Name: "kidney disease"},
		{ID: 21, Concept: "Finding", Name: "fever"},
	} {
		if err := store.AddInstance(inst); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range []kb.Assertion{
		{Subject: 1, Relationship: "treat", Object: 10},
		{Subject: 10, Relationship: "hasFinding", Object: 20},
	} {
		if err := store.AddAssertion(a); err != nil {
			t.Fatal(err)
		}
	}
	corp := corpus.New([]corpus.Document{{ID: "d", Sections: []corpus.Section{
		{Label: "Indication-hasFinding-Finding", Text: "kidney disease kidney disease fever"},
	}}})
	mapper := exactMapper{g}
	ing, err := core.Ingest(o, store, g, corp, mapper, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var snap *engine.Snapshot
	snap = engine.New(ing, engine.Config{
		Mapper: mapper,
		Conversation: func() (*dialog.Conversation, error) {
			examples := dialog.GenerateTrainingExamples(o, store, 1, 8)
			classifier, err := dialog.TrainIntentClassifier(examples)
			if err != nil {
				return nil, err
			}
			extractor := dialog.NewMentionExtractor(store, g.NameKeys())
			return dialog.NewConversation(store, o, classifier, extractor, snap.Relaxer(), ing), nil
		},
	})
	return snap
}

type exactMapper struct{ g *eks.Graph }

func (m exactMapper) Name() string { return "EXACT" }
func (m exactMapper) Map(name string) (eks.ConceptID, bool) {
	ids := m.g.LookupName(name)
	if len(ids) == 0 {
		return 0, false
	}
	return ids[0], true
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := New(testBackend(t))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	out := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if out["status"] != "ok" {
		t.Errorf("healthz = %v", out)
	}
}

func TestStats(t *testing.T) {
	ts := newTestServer(t)
	out := getJSON(t, ts.URL+"/stats", http.StatusOK)
	if out["eksConcepts"].(float64) != 4 {
		t.Errorf("stats = %v", out)
	}
}

func TestRelaxEndpoint(t *testing.T) {
	ts := newTestServer(t)
	out := getJSON(t, ts.URL+"/relax?term=pyelectasia&k=5", http.StatusOK)
	results := out["results"].([]any)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	first := results[0].(map[string]any)
	if first["concept"] != "kidney disease" {
		t.Errorf("first concept = %v", first["concept"])
	}
	if first["score"].(float64) <= 0 {
		t.Errorf("score = %v", first["score"])
	}
}

func TestRelaxEndpointErrors(t *testing.T) {
	ts := newTestServer(t)
	getJSON(t, ts.URL+"/relax", http.StatusBadRequest)
	getJSON(t, ts.URL+"/relax?term=x&k=0", http.StatusBadRequest)
	getJSON(t, ts.URL+"/relax?term=x&k=nope", http.StatusBadRequest)
	getJSON(t, ts.URL+"/relax?term=zzqx+unknown", http.StatusNotFound)
	getJSON(t, ts.URL+"/relax?term=fever&context=bad-ctx-shape-x-y", http.StatusBadRequest)
}

func postChat(t *testing.T, url string, body string) (int, ChatResponse) {
	t.Helper()
	resp, err := http.Post(url+"/chat", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ChatResponse
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func TestChatFlow(t *testing.T) {
	ts := newTestServer(t)
	// Unknown term: suggestions offered.
	code, out := postChat(t, ts.URL, `{"session":"s1","text":"what drugs treat pyelectasia"}`)
	if code != http.StatusOK || !out.Understood || len(out.Suggestions) == 0 {
		t.Fatalf("chat 1 = %d %+v", code, out)
	}
	// Pick the first suggestion; session state must persist across requests.
	code, out = postChat(t, ts.URL, `{"session":"s1","text":"1"}`)
	if code != http.StatusOK || len(out.Answers) == 0 || out.Answers[0] != "lisinopril" {
		t.Fatalf("chat 2 = %d %+v", code, out)
	}
	// A different session has no pending suggestions.
	code, out = postChat(t, ts.URL, `{"session":"s2","text":"1"}`)
	if code != http.StatusOK || out.Understood {
		t.Fatalf("chat other-session = %d %+v", code, out)
	}
	// Reset clears state.
	code, _ = postChat(t, ts.URL, `{"session":"s1","reset":true}`)
	if code != http.StatusOK {
		t.Fatalf("reset = %d", code)
	}
}

func TestChatValidation(t *testing.T) {
	ts := newTestServer(t)
	if code, _ := postChat(t, ts.URL, `not json`); code != http.StatusBadRequest {
		t.Errorf("bad json = %d", code)
	}
	if code, _ := postChat(t, ts.URL, `{"text":"hi"}`); code != http.StatusBadRequest {
		t.Errorf("missing session = %d", code)
	}
	if code, _ := postChat(t, ts.URL, `{"session":"s"}`); code != http.StatusBadRequest {
		t.Errorf("missing text = %d", code)
	}
}

func TestSessionTableEvictsIdle(t *testing.T) {
	srv := New(testBackend(t))
	srv.MaxSessions = 2
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		code, _ := postChat(t, ts.URL, fmt.Sprintf(`{"session":"s%d","text":"what drugs treat fever"}`, i))
		if code != http.StatusOK {
			t.Fatalf("session %d = %d", i, code)
		}
	}
	// A full table evicts the longest-idle session instead of rejecting.
	code, _ := postChat(t, ts.URL, `{"session":"overflow","text":"what drugs treat fever"}`)
	if code != http.StatusOK {
		t.Errorf("overflow session = %d, want 200 via idle eviction", code)
	}
	srv.mu.Lock()
	_, evicted := srv.sessions["s0"]
	_, kept := srv.sessions["overflow"]
	n := len(srv.sessions)
	srv.mu.Unlock()
	if evicted {
		t.Error("oldest session s0 still resident after eviction")
	}
	if !kept || n != 2 {
		t.Errorf("sessions = %d (overflow present: %v), want table back at cap with new session", n, kept)
	}
	// The evicted name starts a fresh conversation transparently.
	if code, _ := postChat(t, ts.URL, `{"session":"s0","text":"what drugs treat fever"}`); code != http.StatusOK {
		t.Errorf("recreated evicted session = %d, want 200", code)
	}
}

func TestSessionTableBusyBackstop(t *testing.T) {
	srv := New(testBackend(t))
	srv.MaxSessions = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, _ := postChat(t, ts.URL, `{"session":"busy","text":"what drugs treat fever"}`); code != http.StatusOK {
		t.Fatal("seed session failed")
	}
	// Hold the only session's lock to simulate a turn in progress: the
	// eviction scan must skip it and the new session must be rejected.
	srv.mu.Lock()
	sess := srv.sessions["busy"]
	srv.mu.Unlock()
	sess.mu.Lock()
	defer sess.mu.Unlock()
	code, _ := postChat(t, ts.URL, `{"session":"other","text":"hello"}`)
	if code != http.StatusServiceUnavailable {
		t.Errorf("all-busy overflow = %d, want 503 backstop", code)
	}
}

func TestRelaxEndpointConcurrent(t *testing.T) {
	ts := newTestServer(t)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			term := "pyelectasia"
			if i%2 == 0 {
				term = "fever"
			}
			resp, err := http.Get(ts.URL + "/relax?term=" + term + "&k=3")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			done <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
