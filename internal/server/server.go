// Package server implements the HTTP JSON API over the relaxation system:
// the deployment shape the paper describes for its cloud-hosted relaxation
// service interacting with the conversational frontend. cmd/kbserver wires
// it to a listener.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"medrelax/internal/core"
	"medrelax/internal/dialog"
	"medrelax/internal/engine"
)

// Backend is the slice of the relaxation system the server needs.
// engine.Snapshot satisfies it directly; the serving subsystem
// (internal/serving) wraps any Backend with caching, admission control,
// and hot reload, and is itself a Backend.
type Backend interface {
	// Relax answers a [term, context] pair with up to k ranked results.
	// ctx carries the request deadline; implementations should abandon
	// work when it fires and return an error wrapping the context error.
	Relax(ctx context.Context, term, qctx string, k int) ([]RelaxResult, error)
	// NewConversation opens a fresh dialogue with relaxation enabled.
	NewConversation() (*dialog.Conversation, error)
	// Stats describes the loaded world.
	Stats() map[string]any
}

// BatchBackend is an optional Backend extension: backends that support the
// batch read path answer POST /relax/batch through it. engine.Snapshot and
// serving.Engine both implement it.
type BatchBackend interface {
	RelaxBatch(ctx context.Context, items []BatchItem) []BatchOutcome
}

// TracedBackend is an optional Backend extension: backends that can report
// which compute path (live traversal, materialized store, posting-list
// index) answered a relaxation expose it here, so the serving layer's
// metrics can split the miss path by source. engine.Snapshot implements it.
type TracedBackend interface {
	RelaxTraced(ctx context.Context, term, qctx string, k int) ([]RelaxResult, core.ServePath, error)
}

// TermSampler is an optional Backend extension: backends that can
// enumerate relaxable terms expose them at GET /terms, which load
// generators (cmd/loadgen) use to build realistic query mixes.
type TermSampler interface {
	// Terms returns up to n query terms known to map to flagged concepts.
	Terms(n int) []string
}

// RelaxResult is one JSON-ready relaxed answer. It is the engine's result
// type re-exported so handlers and backends share one wire shape.
type RelaxResult = engine.RelaxResult

// BatchItem is one query of a POST /relax/batch request.
type BatchItem = engine.BatchItem

// BatchOutcome is one item's answer within a batch.
type BatchOutcome = engine.BatchOutcome

// MaxBatchItems bounds a single /relax/batch request.
const MaxBatchItems = 256

// Server handles the API endpoints.
//
// Concurrency model: the /relax path takes no lock at all — the backend's
// relaxation pipeline (dense graph kernel, sharded similarity cache) is
// safe for concurrent use, so requests run truly in parallel. Only the
// /chat path locks: mu scopes to the session-table map itself, and each
// session carries its own mutex because a dialog.Conversation is stateful.
// Different sessions chat in parallel; two requests for one session are
// serialized.
type Server struct {
	backend Backend

	mu       sync.Mutex // guards sessions (the map only, never held during backend calls)
	sessions map[string]*session
	// MaxSessions bounds the session table. When full, the
	// longest-idle session (by last-turn time) is evicted to make room;
	// rejection happens only as a backstop when every session is
	// mid-turn and nothing can be evicted. Default 1024.
	MaxSessions int
}

// session is one conversation plus the mutex serializing its turns.
type session struct {
	mu   sync.Mutex
	conv *dialog.Conversation
	// lastTurn is the unix-nano time of the last activity, read by the
	// idle-eviction scan without taking mu (hence atomic).
	lastTurn atomic.Int64
}

func (s *session) touch() { s.lastTurn.Store(time.Now().UnixNano()) }

// New builds a server over a backend.
func New(backend Backend) *Server {
	return &Server{backend: backend, sessions: map[string]*session{}, MaxSessions: 1024}
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /relax", s.handleRelax)
	mux.HandleFunc("POST /relax/batch", s.handleRelaxBatch)
	mux.HandleFunc("GET /terms", s.handleTerms)
	mux.HandleFunc("POST /chat", s.handleChat)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.backend.Stats())
}

// validateRelaxParams applies the shared /relax parameter contract: term
// required, k in [1, 1000] defaulting to 10. The returned message is the
// exact 400 body text, so single and batch paths fail identically.
func validateRelaxParams(term string, k int, kSet bool) (int, string) {
	if term == "" {
		return 0, "missing term parameter"
	}
	if !kSet {
		return 10, ""
	}
	if k < 1 || k > 1000 {
		return 0, "k must be an integer in [1, 1000]"
	}
	return k, ""
}

// relaxBody is the one success-body shape for a relax answer, shared by
// GET /relax and each POST /relax/batch item so the two serialize
// byte-identically.
func relaxBody(term, qctx string, results []RelaxResult) map[string]any {
	return map[string]any{"term": term, "context": qctx, "results": results}
}

// explainWanted reports whether the request opted into explain mode
// (`explain=true` or `explain=1`). Any other value — including absence —
// is the classic mode, whose responses stay byte-identical to servers that
// predate the parameter.
func explainWanted(r *http.Request) bool {
	v := r.URL.Query().Get("explain")
	return v == "true" || v == "1"
}

func (s *Server) handleRelax(w http.ResponseWriter, r *http.Request) {
	term := r.URL.Query().Get("term")
	qctx := r.URL.Query().Get("context")
	if explainWanted(r) {
		r = r.WithContext(core.WithExplain(r.Context()))
	}
	k, kSet := 0, false
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil {
			writeError(w, http.StatusBadRequest, "k must be an integer in [1, 1000]")
			return
		}
		k, kSet = v, true
	}
	k, msg := validateRelaxParams(term, k, kSet)
	if msg != "" {
		writeError(w, http.StatusBadRequest, msg)
		return
	}
	// No lock: the relaxation pipeline is safe for concurrent use, so the
	// hot path serves requests fully in parallel.
	results, err := s.backend.Relax(r.Context(), term, qctx, k)
	if err != nil {
		status := statusForError(err)
		if status == http.StatusServiceUnavailable {
			// A transient backend fault is retryable: tell the client
			// when, the same way admission-control sheds do.
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, relaxBody(term, qctx, results))
}

// BatchRequest is the POST /relax/batch request body.
type BatchRequest struct {
	Queries []BatchItem `json:"queries"`
}

// BatchItemResponse wraps one item's answer: Status is the HTTP status the
// same query would have gotten from GET /relax, Body the exact response
// object it would have gotten — success items serialize byte-identically
// to sequential /relax bodies.
type BatchItemResponse struct {
	Status int `json:"status"`
	Body   any `json:"body"`
}

// handleRelaxBatch answers many relax queries in one request through the
// backend's shared-scratch batch path. The response is positional: item i
// answers query i, failures included, so one unknown term does not fail
// the batch. The request deadline bounds the whole batch.
func (s *Server) handleRelaxBatch(w http.ResponseWriter, r *http.Request) {
	bb, ok := s.backend.(BatchBackend)
	if !ok {
		writeError(w, http.StatusNotImplemented, "backend does not support batch relaxation")
		return
	}
	if explainWanted(r) {
		r = r.WithContext(core.WithExplain(r.Context()))
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "queries must be a non-empty array")
		return
	}
	if len(req.Queries) > MaxBatchItems {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds limit of %d", len(req.Queries), MaxBatchItems))
		return
	}
	items := make([]BatchItemResponse, len(req.Queries))
	// Validate every item first; only the valid ones reach the backend,
	// with positions preserved through the index map.
	valid := make([]BatchItem, 0, len(req.Queries))
	validIdx := make([]int, 0, len(req.Queries))
	for i, q := range req.Queries {
		k, msg := validateRelaxParams(q.Term, q.K, q.K != 0)
		if msg != "" {
			items[i] = BatchItemResponse{Status: http.StatusBadRequest, Body: map[string]string{"error": msg}}
			continue
		}
		q.K = k
		valid = append(valid, q)
		validIdx = append(validIdx, i)
	}
	if len(valid) > 0 {
		outcomes := bb.RelaxBatch(r.Context(), valid)
		for j, out := range outcomes {
			i := validIdx[j]
			if out.Err != nil {
				items[i] = BatchItemResponse{
					Status: statusForError(out.Err),
					Body:   map[string]string{"error": out.Err.Error()},
				}
				continue
			}
			items[i] = BatchItemResponse{
				Status: http.StatusOK,
				Body:   relaxBody(valid[j].Term, valid[j].Context, out.Results),
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"items": items})
}

// transient is the marker interface for failures expected to clear on
// retry (injected faults, flaky downstream I/O). Declared structurally so
// error producers don't need to import this package.
type transient interface{ Transient() bool }

// statusForError maps backend failures onto HTTP semantics via the typed
// errors from core: an unmappable term is the caller's 404, a malformed
// context their 400, an expired deadline the gateway's 504, a transient
// backend fault a retryable 503, and anything else an internal 500.
func statusForError(err error) int {
	var tr transient
	switch {
	case errors.Is(err, core.ErrUnknownTerm):
		return http.StatusNotFound
	case errors.Is(err, core.ErrBadContext):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.As(err, &tr) && tr.Transient():
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// handleTerms exposes a sample of relaxable query terms when the backend
// can enumerate them; load generators use it to build realistic mixes.
func (s *Server) handleTerms(w http.ResponseWriter, r *http.Request) {
	ts, ok := s.backend.(TermSampler)
	if !ok {
		writeError(w, http.StatusNotImplemented, "backend cannot enumerate terms")
		return
	}
	n := 100
	if ns := r.URL.Query().Get("n"); ns != "" {
		v, err := strconv.Atoi(ns)
		if err != nil || v < 1 || v > 100000 {
			writeError(w, http.StatusBadRequest, "n must be an integer in [1, 100000]")
			return
		}
		n = v
	}
	terms := ts.Terms(n)
	writeJSON(w, http.StatusOK, map[string]any{"terms": terms})
}

// ChatRequest is the /chat request body.
type ChatRequest struct {
	Session string `json:"session"`
	Text    string `json:"text"`
	Reset   bool   `json:"reset,omitempty"`
}

// ChatResponse is the /chat response body.
type ChatResponse struct {
	Text        string   `json:"text"`
	Answers     []string `json:"answers,omitempty"`
	Suggestions []string `json:"suggestions,omitempty"`
	Related     []string `json:"related,omitempty"`
	Context     string   `json:"context"`
	Understood  bool     `json:"understood"`
	Relaxed     bool     `json:"relaxed"`
}

func (s *Server) handleChat(w http.ResponseWriter, r *http.Request) {
	var req ChatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if req.Session == "" || (req.Text == "" && !req.Reset) {
		writeError(w, http.StatusBadRequest, "session and text are required")
		return
	}
	sess, err := s.conversation(req.Session)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	// Serialize turns within this session only; other sessions proceed.
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.touch()
	if sess.conv == nil {
		// A concurrent creator failed after this request found the slot.
		writeError(w, http.StatusServiceUnavailable, "session initialization failed, retry")
		return
	}
	if req.Reset {
		sess.conv.Reset()
		if req.Text == "" {
			writeJSON(w, http.StatusOK, ChatResponse{Text: "session reset", Understood: true})
			return
		}
	}
	resp := sess.conv.Ask(req.Text)
	writeJSON(w, http.StatusOK, ChatResponse{
		Text:        resp.Text,
		Answers:     resp.Answers,
		Suggestions: resp.Suggestions,
		Related:     resp.Related,
		Context:     resp.Context.String(),
		Understood:  resp.Understood,
		Relaxed:     resp.UsedRelaxation,
	})
}

func (s *Server) conversation(name string) (*session, error) {
	s.mu.Lock()
	if sess, ok := s.sessions[name]; ok {
		s.mu.Unlock()
		return sess, nil
	}
	if len(s.sessions) >= s.MaxSessions && !s.evictIdleLocked() {
		n := len(s.sessions)
		s.mu.Unlock()
		return nil, fmt.Errorf("session table full (%d sessions, none idle)", n)
	}
	// Reserve the slot before building the conversation so the (possibly
	// slow) construction happens outside the table lock; concurrent
	// requests for the same new session serialize on the session mutex.
	sess := &session{}
	sess.touch()
	sess.mu.Lock()
	s.sessions[name] = sess
	s.mu.Unlock()
	defer sess.mu.Unlock()
	conv, err := s.backend.NewConversation()
	if err != nil {
		s.mu.Lock()
		delete(s.sessions, name)
		s.mu.Unlock()
		return nil, fmt.Errorf("creating conversation: %w", err)
	}
	sess.conv = conv
	return sess, nil
}

// evictIdleLocked frees one slot by dropping the longest-idle session
// whose mutex can be taken without blocking (a session mid-turn is never
// evicted). Caller holds s.mu. Returns false when every session is busy —
// the hard-reject backstop.
func (s *Server) evictIdleLocked() bool {
	type cand struct {
		name string
		sess *session
		t    int64
	}
	cands := make([]cand, 0, len(s.sessions))
	for name, sess := range s.sessions {
		cands = append(cands, cand{name, sess, sess.lastTurn.Load()})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].t < cands[j].t })
	for _, c := range cands {
		if !c.sess.mu.TryLock() {
			continue // mid-turn, not idle
		}
		delete(s.sessions, c.name)
		// Nil the conversation so a racing request that already fetched
		// this session pointer fails with "retry" instead of talking to
		// an evicted dialogue.
		c.sess.conv = nil
		c.sess.mu.Unlock()
		return true
	}
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("server: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
