// Package server implements the HTTP JSON API over the relaxation system:
// the deployment shape the paper describes for its cloud-hosted relaxation
// service interacting with the conversational frontend. cmd/kbserver wires
// it to a listener.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"medrelax/internal/core"
	"medrelax/internal/dialog"
	"medrelax/internal/eks"
	"medrelax/internal/ontology"
)

// Backend is the slice of the relaxation system the server needs; the
// medrelax.System satisfies it through a thin adapter in cmd/kbserver, and
// tests satisfy it with small fixtures. The serving subsystem
// (internal/serving) wraps any Backend with caching, admission control,
// and hot reload, and is itself a Backend.
type Backend interface {
	// Relax answers a [term, context] pair with up to k ranked results.
	// ctx carries the request deadline; implementations should abandon
	// work when it fires and return an error wrapping the context error.
	Relax(ctx context.Context, term, qctx string, k int) ([]RelaxResult, error)
	// NewConversation opens a fresh dialogue with relaxation enabled.
	NewConversation() (*dialog.Conversation, error)
	// Stats describes the loaded world.
	Stats() map[string]any
}

// TermSampler is an optional Backend extension: backends that can
// enumerate relaxable terms expose them at GET /terms, which load
// generators (cmd/loadgen) use to build realistic query mixes.
type TermSampler interface {
	// Terms returns up to n query terms known to map to flagged concepts.
	Terms(n int) []string
}

// RelaxResult is one JSON-ready relaxed answer.
type RelaxResult struct {
	Concept   string   `json:"concept"`
	Score     float64  `json:"score"`
	Hops      int      `json:"hops"`
	Instances []string `json:"instances"`
}

// Server handles the API endpoints.
//
// Concurrency model: the /relax path takes no lock at all — the backend's
// relaxation pipeline (dense graph kernel, sharded similarity cache) is
// safe for concurrent use, so requests run truly in parallel. Only the
// /chat path locks: mu scopes to the session-table map itself, and each
// session carries its own mutex because a dialog.Conversation is stateful.
// Different sessions chat in parallel; two requests for one session are
// serialized.
type Server struct {
	backend Backend

	mu       sync.Mutex // guards sessions (the map only, never held during backend calls)
	sessions map[string]*session
	// MaxSessions bounds the session table. When full, the
	// longest-idle session (by last-turn time) is evicted to make room;
	// rejection happens only as a backstop when every session is
	// mid-turn and nothing can be evicted. Default 1024.
	MaxSessions int
}

// session is one conversation plus the mutex serializing its turns.
type session struct {
	mu   sync.Mutex
	conv *dialog.Conversation
	// lastTurn is the unix-nano time of the last activity, read by the
	// idle-eviction scan without taking mu (hence atomic).
	lastTurn atomic.Int64
}

func (s *session) touch() { s.lastTurn.Store(time.Now().UnixNano()) }

// New builds a server over a backend.
func New(backend Backend) *Server {
	return &Server{backend: backend, sessions: map[string]*session{}, MaxSessions: 1024}
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /relax", s.handleRelax)
	mux.HandleFunc("GET /terms", s.handleTerms)
	mux.HandleFunc("POST /chat", s.handleChat)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.backend.Stats())
}

func (s *Server) handleRelax(w http.ResponseWriter, r *http.Request) {
	term := r.URL.Query().Get("term")
	if term == "" {
		writeError(w, http.StatusBadRequest, "missing term parameter")
		return
	}
	ctx := r.URL.Query().Get("context")
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v < 1 || v > 1000 {
			writeError(w, http.StatusBadRequest, "k must be an integer in [1, 1000]")
			return
		}
		k = v
	}
	// No lock: the relaxation pipeline is safe for concurrent use, so the
	// hot path serves requests fully in parallel.
	results, err := s.backend.Relax(r.Context(), term, ctx, k)
	if err != nil {
		status := statusForError(err)
		if status == http.StatusServiceUnavailable {
			// A transient backend fault is retryable: tell the client
			// when, the same way admission-control sheds do.
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"term": term, "context": ctx, "results": results})
}

// transient is the marker interface for failures expected to clear on
// retry (injected faults, flaky downstream I/O). Declared structurally so
// error producers don't need to import this package.
type transient interface{ Transient() bool }

// statusForError maps backend failures onto HTTP semantics via the typed
// errors from core: an unmappable term is the caller's 404, a malformed
// context their 400, an expired deadline the gateway's 504, a transient
// backend fault a retryable 503, and anything else an internal 500.
func statusForError(err error) int {
	var tr transient
	switch {
	case errors.Is(err, core.ErrUnknownTerm):
		return http.StatusNotFound
	case errors.Is(err, core.ErrBadContext):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.As(err, &tr) && tr.Transient():
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// handleTerms exposes a sample of relaxable query terms when the backend
// can enumerate them; load generators use it to build realistic mixes.
func (s *Server) handleTerms(w http.ResponseWriter, r *http.Request) {
	ts, ok := s.backend.(TermSampler)
	if !ok {
		writeError(w, http.StatusNotImplemented, "backend cannot enumerate terms")
		return
	}
	n := 100
	if ns := r.URL.Query().Get("n"); ns != "" {
		v, err := strconv.Atoi(ns)
		if err != nil || v < 1 || v > 100000 {
			writeError(w, http.StatusBadRequest, "n must be an integer in [1, 100000]")
			return
		}
		n = v
	}
	terms := ts.Terms(n)
	writeJSON(w, http.StatusOK, map[string]any{"terms": terms})
}

// ChatRequest is the /chat request body.
type ChatRequest struct {
	Session string `json:"session"`
	Text    string `json:"text"`
	Reset   bool   `json:"reset,omitempty"`
}

// ChatResponse is the /chat response body.
type ChatResponse struct {
	Text        string   `json:"text"`
	Answers     []string `json:"answers,omitempty"`
	Suggestions []string `json:"suggestions,omitempty"`
	Related     []string `json:"related,omitempty"`
	Context     string   `json:"context"`
	Understood  bool     `json:"understood"`
	Relaxed     bool     `json:"relaxed"`
}

func (s *Server) handleChat(w http.ResponseWriter, r *http.Request) {
	var req ChatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if req.Session == "" || (req.Text == "" && !req.Reset) {
		writeError(w, http.StatusBadRequest, "session and text are required")
		return
	}
	sess, err := s.conversation(req.Session)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	// Serialize turns within this session only; other sessions proceed.
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.touch()
	if sess.conv == nil {
		// A concurrent creator failed after this request found the slot.
		writeError(w, http.StatusServiceUnavailable, "session initialization failed, retry")
		return
	}
	if req.Reset {
		sess.conv.Reset()
		if req.Text == "" {
			writeJSON(w, http.StatusOK, ChatResponse{Text: "session reset", Understood: true})
			return
		}
	}
	resp := sess.conv.Ask(req.Text)
	writeJSON(w, http.StatusOK, ChatResponse{
		Text:        resp.Text,
		Answers:     resp.Answers,
		Suggestions: resp.Suggestions,
		Related:     resp.Related,
		Context:     resp.Context.String(),
		Understood:  resp.Understood,
		Relaxed:     resp.UsedRelaxation,
	})
}

func (s *Server) conversation(name string) (*session, error) {
	s.mu.Lock()
	if sess, ok := s.sessions[name]; ok {
		s.mu.Unlock()
		return sess, nil
	}
	if len(s.sessions) >= s.MaxSessions && !s.evictIdleLocked() {
		n := len(s.sessions)
		s.mu.Unlock()
		return nil, fmt.Errorf("session table full (%d sessions, none idle)", n)
	}
	// Reserve the slot before building the conversation so the (possibly
	// slow) construction happens outside the table lock; concurrent
	// requests for the same new session serialize on the session mutex.
	sess := &session{}
	sess.touch()
	sess.mu.Lock()
	s.sessions[name] = sess
	s.mu.Unlock()
	defer sess.mu.Unlock()
	conv, err := s.backend.NewConversation()
	if err != nil {
		s.mu.Lock()
		delete(s.sessions, name)
		s.mu.Unlock()
		return nil, fmt.Errorf("creating conversation: %w", err)
	}
	sess.conv = conv
	return sess, nil
}

// evictIdleLocked frees one slot by dropping the longest-idle session
// whose mutex can be taken without blocking (a session mid-turn is never
// evicted). Caller holds s.mu. Returns false when every session is busy —
// the hard-reject backstop.
func (s *Server) evictIdleLocked() bool {
	type cand struct {
		name string
		sess *session
		t    int64
	}
	cands := make([]cand, 0, len(s.sessions))
	for name, sess := range s.sessions {
		cands = append(cands, cand{name, sess, sess.lastTurn.Load()})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].t < cands[j].t })
	for _, c := range cands {
		if !c.sess.mu.TryLock() {
			continue // mid-turn, not idle
		}
		delete(s.sessions, c.name)
		// Nil the conversation so a racing request that already fetched
		// this session pointer fails with "retry" instead of talking to
		// an evicted dialogue.
		c.sess.conv = nil
		c.sess.mu.Unlock()
		return true
	}
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("server: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// RelaxerBackend is a ready-made Backend over the core types, for callers
// that assembled the pipeline themselves (tests, custom worlds).
type RelaxerBackend struct {
	Relaxer      *core.Relaxer
	Ing          *core.Ingestion
	Conversation func() (*dialog.Conversation, error)
}

// Relax implements Backend.
func (b *RelaxerBackend) Relax(ctx context.Context, term, qctx string, k int) ([]RelaxResult, error) {
	var ctxPtr *ontology.Context
	if qctx != "" {
		parsed, err := ontology.ParseContext(qctx)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", core.ErrBadContext, err)
		}
		ctxPtr = &parsed
	}
	results, err := b.Relaxer.RelaxTermContext(ctx, term, ctxPtr, k)
	if err != nil {
		return nil, err
	}
	out := make([]RelaxResult, 0, len(results))
	for _, r := range results {
		concept, _ := b.Ing.Graph.Concept(r.Concept)
		rr := RelaxResult{Concept: concept.Name, Score: r.Score, Hops: r.Hops}
		for _, iid := range r.Instances {
			if inst, ok := b.Ing.Store.Instance(iid); ok {
				rr.Instances = append(rr.Instances, inst.Name)
			}
		}
		out = append(out, rr)
	}
	return out, nil
}

// NewConversation implements Backend.
func (b *RelaxerBackend) NewConversation() (*dialog.Conversation, error) {
	if b.Conversation == nil {
		return nil, fmt.Errorf("no conversation factory configured")
	}
	return b.Conversation()
}

// Terms implements TermSampler: flagged concepts are exactly the ones
// relaxation can answer from, so their names make a realistic query mix.
func (b *RelaxerBackend) Terms(n int) []string {
	ids := make([]eks.ConceptID, 0, len(b.Ing.Flagged))
	for id := range b.Ing.Flagged {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	if n < len(ids) {
		ids = ids[:n]
	}
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if c, ok := b.Ing.Graph.Concept(id); ok {
			out = append(out, c.Name)
		}
	}
	return out
}

// Stats implements Backend.
func (b *RelaxerBackend) Stats() map[string]any {
	return map[string]any{
		"eksConcepts":     b.Ing.Graph.Len(),
		"eksEdges":        b.Ing.Graph.EdgeCount(),
		"shortcutsAdded":  b.Ing.ShortcutsAdded,
		"kbInstances":     b.Ing.Store.Len(),
		"flaggedConcepts": len(b.Ing.Flagged),
		"contexts":        len(b.Ing.Contexts),
	}
}
