// Package server implements the HTTP JSON API over the relaxation system:
// the deployment shape the paper describes for its cloud-hosted relaxation
// service interacting with the conversational frontend. cmd/kbserver wires
// it to a listener.
package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"

	"medrelax/internal/core"
	"medrelax/internal/dialog"
	"medrelax/internal/ontology"
)

// Backend is the slice of the relaxation system the server needs; the
// medrelax.System satisfies it through a thin adapter in cmd/kbserver, and
// tests satisfy it with small fixtures.
type Backend interface {
	// Relax answers a [term, context] pair with up to k ranked results.
	Relax(term, ctx string, k int) ([]RelaxResult, error)
	// NewConversation opens a fresh dialogue with relaxation enabled.
	NewConversation() (*dialog.Conversation, error)
	// Stats describes the loaded world.
	Stats() map[string]any
}

// RelaxResult is one JSON-ready relaxed answer.
type RelaxResult struct {
	Concept   string   `json:"concept"`
	Score     float64  `json:"score"`
	Hops      int      `json:"hops"`
	Instances []string `json:"instances"`
}

// Server handles the API endpoints.
type Server struct {
	backend Backend

	mu       sync.Mutex
	sessions map[string]*dialog.Conversation
	// MaxSessions bounds the session table; the oldest insertion order is
	// not tracked — when full, new sessions are rejected. Default 1024.
	MaxSessions int
}

// New builds a server over a backend.
func New(backend Backend) *Server {
	return &Server{backend: backend, sessions: map[string]*dialog.Conversation{}, MaxSessions: 1024}
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /relax", s.handleRelax)
	mux.HandleFunc("POST /chat", s.handleChat)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.backend.Stats())
}

func (s *Server) handleRelax(w http.ResponseWriter, r *http.Request) {
	term := r.URL.Query().Get("term")
	if term == "" {
		writeError(w, http.StatusBadRequest, "missing term parameter")
		return
	}
	ctx := r.URL.Query().Get("context")
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v < 1 || v > 1000 {
			writeError(w, http.StatusBadRequest, "k must be an integer in [1, 1000]")
			return
		}
		k = v
	}
	// The relaxer's similarity evaluator caches per-query state and is not
	// safe for concurrent use; serialize backend calls.
	s.mu.Lock()
	results, err := s.backend.Relax(term, ctx, k)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"term": term, "context": ctx, "results": results})
}

// ChatRequest is the /chat request body.
type ChatRequest struct {
	Session string `json:"session"`
	Text    string `json:"text"`
	Reset   bool   `json:"reset,omitempty"`
}

// ChatResponse is the /chat response body.
type ChatResponse struct {
	Text        string   `json:"text"`
	Answers     []string `json:"answers,omitempty"`
	Suggestions []string `json:"suggestions,omitempty"`
	Related     []string `json:"related,omitempty"`
	Context     string   `json:"context"`
	Understood  bool     `json:"understood"`
	Relaxed     bool     `json:"relaxed"`
}

func (s *Server) handleChat(w http.ResponseWriter, r *http.Request) {
	var req ChatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if req.Session == "" || (req.Text == "" && !req.Reset) {
		writeError(w, http.StatusBadRequest, "session and text are required")
		return
	}
	conv, err := s.conversation(req.Session)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Reset {
		conv.Reset()
		if req.Text == "" {
			writeJSON(w, http.StatusOK, ChatResponse{Text: "session reset", Understood: true})
			return
		}
	}
	resp := conv.Ask(req.Text)
	writeJSON(w, http.StatusOK, ChatResponse{
		Text:        resp.Text,
		Answers:     resp.Answers,
		Suggestions: resp.Suggestions,
		Related:     resp.Related,
		Context:     resp.Context.String(),
		Understood:  resp.Understood,
		Relaxed:     resp.UsedRelaxation,
	})
}

func (s *Server) conversation(session string) (*dialog.Conversation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if conv, ok := s.sessions[session]; ok {
		return conv, nil
	}
	if len(s.sessions) >= s.MaxSessions {
		return nil, fmt.Errorf("session table full (%d sessions)", len(s.sessions))
	}
	conv, err := s.backend.NewConversation()
	if err != nil {
		return nil, fmt.Errorf("creating conversation: %w", err)
	}
	s.sessions[session] = conv
	return conv, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("server: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// RelaxerBackend is a ready-made Backend over the core types, for callers
// that assembled the pipeline themselves (tests, custom worlds).
type RelaxerBackend struct {
	Relaxer      *core.Relaxer
	Ing          *core.Ingestion
	Conversation func() (*dialog.Conversation, error)
}

// Relax implements Backend.
func (b *RelaxerBackend) Relax(term, ctx string, k int) ([]RelaxResult, error) {
	var ctxPtr *ontology.Context
	if ctx != "" {
		parsed, err := ontology.ParseContext(ctx)
		if err != nil {
			return nil, err
		}
		ctxPtr = &parsed
	}
	results, err := b.Relaxer.RelaxTerm(term, ctxPtr, k)
	if err != nil {
		return nil, err
	}
	out := make([]RelaxResult, 0, len(results))
	for _, r := range results {
		concept, _ := b.Ing.Graph.Concept(r.Concept)
		rr := RelaxResult{Concept: concept.Name, Score: r.Score, Hops: r.Hops}
		for _, iid := range r.Instances {
			if inst, ok := b.Ing.Store.Instance(iid); ok {
				rr.Instances = append(rr.Instances, inst.Name)
			}
		}
		out = append(out, rr)
	}
	return out, nil
}

// NewConversation implements Backend.
func (b *RelaxerBackend) NewConversation() (*dialog.Conversation, error) {
	if b.Conversation == nil {
		return nil, fmt.Errorf("no conversation factory configured")
	}
	return b.Conversation()
}

// Stats implements Backend.
func (b *RelaxerBackend) Stats() map[string]any {
	return map[string]any{
		"eksConcepts":     b.Ing.Graph.Len(),
		"eksEdges":        b.Ing.Graph.EdgeCount(),
		"shortcutsAdded":  b.Ing.ShortcutsAdded,
		"kbInstances":     b.Ing.Store.Len(),
		"flaggedConcepts": len(b.Ing.Flagged),
		"contexts":        len(b.Ing.Contexts),
	}
}
