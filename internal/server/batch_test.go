package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
)

// batchItemRaw decodes a batch item with the body kept as raw bytes, so
// tests can compare it byte-for-byte against a sequential /relax body.
type batchItemRaw struct {
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body"`
}

func postBatch(t *testing.T, base, body string) (int, []batchItemRaw) {
	t.Helper()
	resp, err := http.Post(base+"/relax/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Items []batchItemRaw `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && resp.StatusCode == http.StatusOK {
		t.Fatalf("decoding batch response: %v", err)
	}
	return resp.StatusCode, out.Items
}

// getRaw fetches a sequential /relax and returns its status and exact body
// bytes (trailing newline trimmed — the encoder appends one per response).
func getRaw(t *testing.T, rawURL string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, bytes.TrimRight(body, "\n")
}

// TestBatchMatchesSequentialBytes pins the batch contract: every item's
// status and body must be byte-identical to what the same query gets from
// a sequential GET /relax — successes, unknown terms, bad contexts, and
// parameter validation alike.
func TestBatchMatchesSequentialBytes(t *testing.T) {
	ts := newTestServer(t)
	queries := []struct {
		term, qctx string
		k          int
	}{
		{"pyelectasia", "", 5},
		{"fever", "", 3},
		{"zzqx unknown", "", 5},
		{"fever", "bad-ctx-shape-x-y", 2},
		{"", "", 5}, // missing term: validation must match too
		{"pyelectasia", "", 5},
	}
	var items []map[string]any
	for _, q := range queries {
		items = append(items, map[string]any{"term": q.term, "context": q.qctx, "k": q.k})
	}
	reqBody, _ := json.Marshal(map[string]any{"queries": items})
	code, got := postBatch(t, ts.URL, string(reqBody))
	if code != http.StatusOK {
		t.Fatalf("batch status = %d", code)
	}
	if len(got) != len(queries) {
		t.Fatalf("batch returned %d items for %d queries", len(got), len(queries))
	}
	for i, q := range queries {
		v := url.Values{}
		if q.term != "" {
			v.Set("term", q.term)
		}
		if q.qctx != "" {
			v.Set("context", q.qctx)
		}
		v.Set("k", fmt.Sprint(q.k))
		wantStatus, wantBody := getRaw(t, ts.URL+"/relax?"+v.Encode())
		if got[i].Status != wantStatus {
			t.Errorf("item %d (%+v): status %d, sequential %d", i, q, got[i].Status, wantStatus)
		}
		if !bytes.Equal(got[i].Body, wantBody) {
			t.Errorf("item %d (%+v): body diverged from sequential /relax:\nbatch: %s\nseq:   %s",
				i, q, got[i].Body, wantBody)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	ts := newTestServer(t)
	if code, _ := postBatch(t, ts.URL, `{"queries":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty batch = %d, want 400", code)
	}
	if code, _ := postBatch(t, ts.URL, `not json`); code != http.StatusBadRequest {
		t.Errorf("bad json = %d, want 400", code)
	}
	var big []map[string]any
	for i := 0; i <= MaxBatchItems; i++ {
		big = append(big, map[string]any{"term": "fever"})
	}
	body, _ := json.Marshal(map[string]any{"queries": big})
	if code, _ := postBatch(t, ts.URL, string(body)); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch = %d, want 413", code)
	}
}

// TestBatchDefaultK checks the k default (10) and the k=0 equivalence with
// an unset k, mirroring GET /relax without a k parameter.
func TestBatchDefaultK(t *testing.T) {
	ts := newTestServer(t)
	code, got := postBatch(t, ts.URL, `{"queries":[{"term":"pyelectasia"}]}`)
	if code != http.StatusOK || len(got) != 1 {
		t.Fatalf("batch = %d, %d items", code, len(got))
	}
	wantStatus, wantBody := getRaw(t, ts.URL+"/relax?term=pyelectasia")
	if got[0].Status != wantStatus || !bytes.Equal(got[0].Body, wantBody) {
		t.Errorf("default-k item diverged:\nbatch: %s\nseq:   %s", got[0].Body, wantBody)
	}
}
