// Package stringutil provides the low-level text primitives shared by the
// rest of the system: normalization, tokenization, and approximate string
// distance measures.
//
// All matching in medrelax — instance-to-concept mapping, entity mention
// extraction, corpus counting — funnels through Normalize and Tokenize so
// that every layer agrees on what "the same string" means.
package stringutil

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Normalize canonicalizes a surface form for matching: it lowercases,
// collapses runs of whitespace, strips surrounding punctuation from tokens,
// and trims the result. Normalize is idempotent; already-normal input is
// returned as-is without allocating, which makes re-normalization on the
// ingestion and restore hot paths near-free.
func Normalize(s string) string {
	if isNormalized(s) {
		return s
	}
	tokens := Tokenize(s)
	return strings.Join(tokens, " ")
}

// isNormalized reports whether s is already in Normalize's output form:
// lowercase ASCII tokens of letters/digits (with interior -/' connectors)
// separated by single spaces, no leading/trailing blanks or dangling
// connectors.
func isNormalized(s string) bool {
	prev := byte(' ') // sentinel: start of string behaves like after-space
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
		case c == '-' || c == '\'':
			// Connectors survive Normalize only in token interiors.
			if prev == ' ' || i+1 >= len(s) || s[i+1] == ' ' {
				return false
			}
		case c == ' ':
			if prev == ' ' || i == len(s)-1 {
				return false
			}
		default:
			return false
		}
		prev = c
	}
	return true
}

// Tokenize splits s into lowercase word tokens. A token is a maximal run of
// letters, digits, or intra-word hyphens/apostrophes. All other runes
// separate tokens. Tokenize never returns empty tokens.
func Tokenize(s string) []string {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return tokenizeRunes(s)
		}
	}
	// ASCII fast path: lowercase once, then slice tokens out of the shared
	// backing string instead of building each one rune by rune.
	lower := strings.ToLower(s)
	var tokens []string
	for i := 0; i < len(lower); {
		for i < len(lower) && !isTokenByte(lower[i]) {
			i++
		}
		start := i
		for i < len(lower) && isTokenByte(lower[i]) {
			i++
		}
		if start < i {
			if tok := strings.Trim(lower[start:i], "-'"); tok != "" {
				tokens = append(tokens, tok)
			}
		}
	}
	return tokens
}

func isTokenByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '\''
}

// tokenizeRunes is the general Unicode path of Tokenize.
func tokenizeRunes(s string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tok := strings.Trim(b.String(), "-'")
			if tok != "" {
				tokens = append(tokens, tok)
			}
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '-' || r == '\'':
			// Keep intra-word connectors; Trim above drops dangling ones.
			if b.Len() > 0 {
				b.WriteRune(r)
			}
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Levenshtein returns the edit distance (insertions, deletions,
// substitutions, each at cost 1) between a and b, computed over runes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Single-row dynamic program.
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			curr[j] = min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)]
}

// LevenshteinWithin reports whether the edit distance between a and b is at
// most maxDist, without computing the full distance when it is not. It runs
// a banded dynamic program of width 2*maxDist+1, making it much cheaper than
// Levenshtein for small thresholds over a large lexicon.
func LevenshteinWithin(a, b string, maxDist int) bool {
	if maxDist < 0 {
		return false
	}
	ra, rb := []rune(a), []rune(b)
	if abs(len(ra)-len(rb)) > maxDist {
		return false
	}
	if len(ra) == 0 {
		return len(rb) <= maxDist
	}
	if len(rb) == 0 {
		return len(ra) <= maxDist
	}
	const inf = 1 << 30
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		if j <= maxDist {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= len(ra); i++ {
		lo := max(1, i-maxDist)
		hi := min(len(rb), i+maxDist)
		if lo-1 >= 0 {
			if i <= maxDist {
				curr[0] = i
			} else {
				curr[0] = inf
			}
		}
		if lo > 1 {
			curr[lo-1] = inf
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			v := prev[j-1] + cost
			if prev[j]+1 < v {
				v = prev[j] + 1
			}
			if curr[j-1]+1 < v {
				v = curr[j-1] + 1
			}
			curr[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if hi < len(rb) {
			curr[hi+1] = inf
		}
		if rowMin > maxDist {
			return false
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)] <= maxDist
}

// TokenJaccard returns the Jaccard similarity of the token sets of a and b,
// in [0,1]. Two empty strings have similarity 1.
func TokenJaccard(a, b string) float64 {
	ta, tb := Tokenize(a), Tokenize(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	set := make(map[string]uint8, len(ta)+len(tb))
	for _, t := range ta {
		set[t] |= 1
	}
	for _, t := range tb {
		set[t] |= 2
	}
	inter, union := 0, 0
	for _, m := range set {
		union++
		if m == 3 {
			inter++
		}
	}
	return float64(inter) / float64(union)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
