package stringutil

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", ""},
		{"Fever", "fever"},
		{"  Chronic   Kidney Disease ", "chronic kidney disease"},
		{"Pain, in throat!", "pain in throat"},
		{"Beta-blocker", "beta-blocker"},
		{"-leading and trailing-", "leading and trailing"},
		{"O'Brien's syndrome", "o'brien's syndrome"},
		{"COVID-19 (suspected)", "covid-19 suspected"},
		{"a\tb\nc", "a b c"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		return Normalize(n) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"fever", []string{"fever"}},
		{"Psychogenic fever", []string{"psychogenic", "fever"}},
		{"type-2 diabetes", []string{"type-2", "diabetes"}},
		{"!!!", nil},
		{"x'", []string{"x"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"fever", "fever", 0},
		{"hyperpyrexia", "hypothermia", 6},
		{"gumbo", "gambol", 2},
		{"pertussis", "pertusis", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinIdentityAndBounds(t *testing.T) {
	f := func(a, b string) bool {
		d := Levenshtein(a, b)
		la, lb := len([]rune(a)), len([]rune(b))
		if a == b && d != 0 {
			return false
		}
		if d < 0 {
			return false
		}
		// Distance is bounded below by length difference and above by the
		// longer length.
		if d < absInt(la-lb) {
			return false
		}
		return d <= maxInt(la, lb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := "abcdef"
	randStr := func() string {
		n := rng.Intn(8)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return b.String()
	}
	for i := 0; i < 500; i++ {
		a, b, c := randStr(), randStr(), randStr()
		if Levenshtein(a, c) > Levenshtein(a, b)+Levenshtein(b, c) {
			t.Fatalf("triangle inequality violated for %q %q %q", a, b, c)
		}
	}
}

func TestLevenshteinWithinAgreesWithFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := "abcdefgh"
	randStr := func() string {
		n := rng.Intn(12)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return b.String()
	}
	for i := 0; i < 2000; i++ {
		a, b := randStr(), randStr()
		for maxDist := 0; maxDist <= 4; maxDist++ {
			want := Levenshtein(a, b) <= maxDist
			if got := LevenshteinWithin(a, b, maxDist); got != want {
				t.Fatalf("LevenshteinWithin(%q,%q,%d) = %v, want %v (full dist %d)",
					a, b, maxDist, got, want, Levenshtein(a, b))
			}
		}
	}
}

func TestLevenshteinWithinNegativeThreshold(t *testing.T) {
	if LevenshteinWithin("a", "a", -1) {
		t.Error("negative threshold must report false")
	}
}

func TestTokenJaccard(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"fever", "fever", 1},
		{"kidney disease", "disease kidney", 1},
		{"kidney disease", "kidney failure", 1.0 / 3.0},
		{"a b", "c d", 0},
	}
	for _, c := range cases {
		if got := TokenJaccard(c.a, c.b); got != c.want {
			t.Errorf("TokenJaccard(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTokenJaccardRange(t *testing.T) {
	f := func(a, b string) bool {
		j := TokenJaccard(a, b)
		return j >= 0 && j <= 1 && TokenJaccard(b, a) == j
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
