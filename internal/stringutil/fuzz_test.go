package stringutil

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func FuzzNormalize(f *testing.F) {
	for _, seed := range []string{"", "Fever", "pain, in throat!", "béta-blocker", "a  b\tc", strings.Repeat("x", 300)} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n := Normalize(s)
		// Idempotent.
		if Normalize(n) != n {
			t.Fatalf("Normalize not idempotent on %q -> %q", s, n)
		}
		// No leading/trailing/double spaces.
		if strings.HasPrefix(n, " ") || strings.HasSuffix(n, " ") || strings.Contains(n, "  ") {
			t.Fatalf("Normalize(%q) = %q has stray spaces", s, n)
		}
		// Valid UTF-8 out of valid or invalid input.
		if !utf8.ValidString(n) {
			t.Fatalf("Normalize(%q) produced invalid UTF-8", s)
		}
	})
}

func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{"", "type-2 diabetes", "x'", "--", "ΔFOSB overexpression"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatal("empty token")
			}
			if strings.ContainsAny(tok, " \t\n") {
				t.Fatalf("token %q contains whitespace", tok)
			}
			if strings.HasPrefix(tok, "-") || strings.HasSuffix(tok, "-") ||
				strings.HasPrefix(tok, "'") || strings.HasSuffix(tok, "'") {
				t.Fatalf("token %q has dangling connector", tok)
			}
		}
	})
}

func FuzzLevenshteinWithin(f *testing.F) {
	f.Add("kitten", "sitting", 2)
	f.Add("", "abc", 3)
	f.Add("same", "same", 0)
	f.Fuzz(func(t *testing.T, a, b string, maxDist int) {
		if len(a) > 64 || len(b) > 64 {
			return
		}
		if maxDist < -2 || maxDist > 8 {
			maxDist %= 8
		}
		got := LevenshteinWithin(a, b, maxDist)
		want := maxDist >= 0 && Levenshtein(a, b) <= maxDist
		if got != want {
			t.Fatalf("LevenshteinWithin(%q,%q,%d) = %v, full distance %d", a, b, maxDist, got, Levenshtein(a, b))
		}
	})
}
