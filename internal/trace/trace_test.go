package trace

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"medrelax/internal/serving/metrics"
)

func TestParseTraceparent(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", true},
		{"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00", true},
		{"", false},
		{"garbage", false},
		{"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-1", false},  // short flags
		{"00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333-01", false},  // short parent
		{"00-00000000000000000000000000000000-b7ad6b7169203331-01", false}, // zero trace id
		{"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", false}, // zero parent
		{"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false}, // reserved version
		{"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", false}, // uppercase hex
		{"00x0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false}, // bad separator
	}
	for _, c := range cases {
		id, par, flags, ok := ParseTraceparent(c.in)
		if ok != c.ok {
			t.Errorf("ParseTraceparent(%q) ok=%v, want %v", c.in, ok, c.ok)
		}
		if c.ok {
			if len(id) != 32 || len(par) != 16 {
				t.Errorf("ParseTraceparent(%q) id=%q parent=%q", c.in, id, par)
			}
			if strings.HasSuffix(c.in, "-01") && flags&0x01 == 0 {
				t.Errorf("ParseTraceparent(%q) lost sampled flag", c.in)
			}
		}
	}
}

func TestNewTraceparentRoundTrip(t *testing.T) {
	hdr, traceID := NewTraceparent()
	id, _, flags, ok := ParseTraceparent(hdr)
	if !ok || id != traceID || flags&0x01 == 0 {
		t.Fatalf("NewTraceparent produced unparseable header %q (ok=%v id=%q flags=%#x)", hdr, ok, id, flags)
	}
}

func TestSamplingHonorsHeaderAndCounter(t *testing.T) {
	rec := NewRecorder(16, 4)
	tr := NewTracer("test", 4, rec)

	// Explicit sampled header always traces.
	h := http.Header{}
	h.Set(TraceparentHeader, "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	_, sp := tr.StartRequest(context.Background(), h, "req")
	if sp == nil {
		t.Fatal("sampled traceparent not honored")
	}
	if sp.TraceID != "0af7651916cd43dd8448eb211c80319c" || sp.Parent != "b7ad6b7169203331" {
		t.Fatalf("trace context not joined: %+v", sp)
	}

	// Explicitly unsampled header is never traced.
	h.Set(TraceparentHeader, "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	if _, sp := tr.StartRequest(context.Background(), h, "req"); sp != nil {
		t.Fatal("unsampled traceparent was traced")
	}

	// No header: exactly 1 in 4 self-sampled.
	n := 0
	for i := 0; i < 40; i++ {
		if _, sp := tr.StartRequest(context.Background(), http.Header{}, "req"); sp != nil {
			n++
		}
	}
	if n != 10 {
		t.Fatalf("self-sampled %d of 40, want 10", n)
	}

	// sampleEvery=0 disables self-sampling but still honors headers.
	tr0 := NewTracer("test", 0, rec)
	if _, sp := tr0.StartRequest(context.Background(), http.Header{}, "req"); sp != nil {
		t.Fatal("sampleEvery=0 self-sampled")
	}
	h.Set(TraceparentHeader, "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if _, sp := tr0.StartRequest(context.Background(), h, "req"); sp == nil {
		t.Fatal("sampleEvery=0 rejected explicit sampled header")
	}
}

func TestTraceAssemblyAndRecorder(t *testing.T) {
	rec := NewRecorder(4, 2)
	tr := NewTracer("svc", 1, rec)
	reg := metrics.NewRegistry()
	tr.BindMetrics(reg, "svc")

	ctx, root := tr.StartRequest(context.Background(), http.Header{}, "server relax")
	root.SetTag("tenant", "acme")
	child := FromContext(ctx).StartChild("relax.kernel")
	child.SetTag("path", "materialized_hit")
	child.End()
	root.End()

	traces, total := rec.Snapshot(false)
	if total != 1 || len(traces) != 1 {
		t.Fatalf("recorder holds %d traces (total %d), want 1", len(traces), total)
	}
	got := traces[0]
	if got.Tenant != "acme" || got.Root != "server relax" || got.Service != "svc" {
		t.Fatalf("trace metadata wrong: %+v", got)
	}
	if len(got.Spans) != 2 {
		t.Fatalf("trace has %d spans, want 2", len(got.Spans))
	}
	var kernel *Span
	for _, s := range got.Spans {
		if s.Name == "relax.kernel" {
			kernel = s
		}
	}
	if kernel == nil || kernel.Parent != root.ID || kernel.Tag("path") != "materialized_hit" {
		t.Fatalf("kernel span wrong: %+v", kernel)
	}

	var buf strings.Builder
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "svc_trace_spans") || !strings.Contains(buf.String(), "svc_trace_duration_seconds") {
		t.Fatalf("trace histograms missing from registry:\n%s", buf.String())
	}
}

func TestBackhaulEncodeAdopt(t *testing.T) {
	rec := NewRecorder(4, 2)

	// Replica side: trace a request, finish its spans, encode.
	replica := NewTracer("kbserver", 1, NewRecorder(4, 2))
	h := http.Header{}
	h.Set(TraceparentHeader, "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	_, rsp := replica.StartRequest(context.Background(), h, "server relax")
	k := rsp.StartChild("relax.kernel")
	k.SetTag("path", "live_path")
	k.End()
	enc := rsp.EncodeFinished()
	if enc == "" {
		t.Fatal("EncodeFinished empty with one finished span")
	}
	rsp.End()

	// Router side: adopt the replica spans into its own trace.
	router := NewTracer("kbrouter", 1, rec)
	_, root := router.StartRequest(context.Background(), http.Header{}, "router relax")
	att := root.StartChild("router.attempt")
	att.AdoptEncoded(enc)
	att.End()
	root.End()

	traces, _ := rec.Snapshot(false)
	if len(traces) != 1 {
		t.Fatalf("router recorder holds %d traces, want 1", len(traces))
	}
	services := map[string]bool{}
	names := map[string]bool{}
	for _, s := range traces[0].Spans {
		services[s.Service] = true
		names[s.Name] = true
	}
	if !services["kbrouter"] || !services["kbserver"] {
		t.Fatalf("adopted trace missing a service: %v", services)
	}
	if !names["relax.kernel"] {
		t.Fatalf("adopted trace missing replica kernel span: %v", names)
	}

	// Malformed payloads are ignored, never fatal.
	_, root2 := router.StartRequest(context.Background(), http.Header{}, "router relax")
	root2.AdoptEncoded("%%%not-base64%%%")
	root2.AdoptEncoded("aGVsbG8=") // base64 of "hello", not JSON
	root2.End()
}

func TestRecorderRingAndExemplars(t *testing.T) {
	rec := NewRecorder(2, 2)
	mk := func(id string, ms float64) *Trace {
		return &Trace{TraceID: id, DurationMs: ms, Start: time.Now()}
	}
	rec.add(mk("a", 100)) // slowest ever; will cycle out of the ring
	rec.add(mk("b", 1))
	rec.add(mk("c", 2))
	rec.add(mk("d", 3))

	traces, total := rec.Snapshot(false)
	if total != 4 || len(traces) != 2 {
		t.Fatalf("ring: got %d traces total %d, want 2/4", len(traces), total)
	}
	if traces[0].TraceID != "d" || traces[1].TraceID != "c" {
		t.Fatalf("ring order wrong: %s, %s", traces[0].TraceID, traces[1].TraceID)
	}
	slow, _ := rec.Snapshot(true)
	if len(slow) != 2 || slow[0].TraceID != "a" || slow[1].TraceID != "d" {
		t.Fatalf("exemplars wrong: %+v", slow)
	}
}

func TestDebugTracesHandler(t *testing.T) {
	rec := NewRecorder(8, 4)
	rec.add(&Trace{TraceID: "aaa", Tenant: "t1", DurationMs: 5, Start: time.Now()})
	rec.add(&Trace{TraceID: "bbb", Tenant: "t2", DurationMs: 50, Start: time.Now()})

	get := func(q string) string {
		w := httptest.NewRecorder()
		rec.ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces"+q, nil))
		if w.Code != 200 {
			t.Fatalf("GET /debug/traces%s: %d", q, w.Code)
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content-type %q", ct)
		}
		return w.Body.String()
	}

	all := get("")
	if !strings.Contains(all, "aaa") || !strings.Contains(all, "bbb") || !strings.Contains(all, `"total": 2`) {
		t.Fatalf("unfiltered output wrong:\n%s", all)
	}
	if out := get("?min_ms=10"); strings.Contains(out, "aaa") || !strings.Contains(out, "bbb") {
		t.Fatalf("min_ms filter wrong:\n%s", out)
	}
	if out := get("?tenant=t1"); !strings.Contains(out, "aaa") || strings.Contains(out, "bbb") {
		t.Fatalf("tenant filter wrong:\n%s", out)
	}
	if out := get("?trace=bbb"); strings.Contains(out, "aaa") || !strings.Contains(out, "bbb") {
		t.Fatalf("trace filter wrong:\n%s", out)
	}
	if out := get("?slow=1&limit=1"); !strings.Contains(out, "bbb") || strings.Contains(out, "aaa") {
		t.Fatalf("slow+limit wrong:\n%s", out)
	}

	// Nil recorder 404s rather than panicking.
	var nilRec *Recorder
	w := httptest.NewRecorder()
	nilRec.ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("nil recorder returned %d", w.Code)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRequest(context.Background(), http.Header{}, "x")
	if sp != nil || ctx == nil {
		t.Fatal("nil tracer must return (ctx, nil)")
	}
	if tr.Recorder() != nil {
		t.Fatal("nil tracer recorder must be nil")
	}
	tr.BindMetrics(metrics.NewRegistry(), "x")

	var s *Span
	s.SetTag("a", "b")
	s.End()
	s.Inject(http.Header{})
	s.AdoptEncoded("x")
	if s.StartChild("y") != nil || s.EncodeFinished() != "" || s.Tag("a") != "" {
		t.Fatal("nil span methods must no-op")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on bare ctx must be nil")
	}
	if ContextWithSpan(context.Background(), nil) != context.Background() {
		t.Fatal("ContextWithSpan(nil) must return ctx unchanged")
	}
}

// TestUntracedPathZeroAllocs is the benchmem gate in unit-test form: a
// request that loses the sampling roll must not allocate anywhere on
// the trace path.
func TestUntracedPathZeroAllocs(t *testing.T) {
	tr := NewTracer("svc", 1<<30, nil)
	h := http.Header{}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := tr.StartRequest(ctx, h, "req")
		s := FromContext(c)
		s.SetTag("k", "v")
		child := s.StartChild("x")
		child.End()
		Inject(c, h)
		s.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("untraced path allocates %v per op, want 0", allocs)
	}
}

// BenchmarkUntracedOverhead is scraped by CI's benchmem gate: it must
// report 0 allocs/op.
func BenchmarkUntracedOverhead(b *testing.B) {
	tr := NewTracer("svc", 0, nil)
	h := http.Header{}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, _ := tr.StartRequest(ctx, h, "req")
		s := FromContext(c)
		s.SetTag("k", "v")
		child := s.StartChild("x")
		child.End()
		s.End()
	}
}
