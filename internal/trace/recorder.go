package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Trace is one completed request's span tree as stored by the Recorder
// and rendered by /debug/traces.
type Trace struct {
	TraceID      string    `json:"traceId"`
	Root         string    `json:"root"`
	Service      string    `json:"service"`
	Tenant       string    `json:"tenant,omitempty"`
	Start        time.Time `json:"start"`
	DurationMs   float64   `json:"durationMs"`
	Spans        []*Span   `json:"spans"`
	SpansDropped int       `json:"spansDropped,omitempty"`
}

// Recorder retains completed traces in a fixed-size ring plus a top-K
// by-duration exemplar store, so the slowest requests survive even
// after the ring has cycled past them. It is the backing store for
// GET /debug/traces.
type Recorder struct {
	mu    sync.Mutex
	ring  []*Trace
	next  int
	total uint64

	exemplars []*Trace // sorted slowest-first, len <= topK
	topK      int
}

// NewRecorder builds a recorder holding the most recent ringSize traces
// and the topK slowest ever seen.
func NewRecorder(ringSize, topK int) *Recorder {
	if ringSize < 1 {
		ringSize = 1
	}
	if topK < 0 {
		topK = 0
	}
	return &Recorder{ring: make([]*Trace, 0, ringSize), topK: topK}
}

func (r *Recorder) add(t *Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, t)
	} else {
		r.ring[r.next] = t
	}
	r.next = (r.next + 1) % cap(r.ring)
	if r.topK == 0 {
		return
	}
	if len(r.exemplars) < r.topK {
		r.exemplars = append(r.exemplars, t)
	} else if t.DurationMs > r.exemplars[len(r.exemplars)-1].DurationMs {
		r.exemplars[len(r.exemplars)-1] = t
	} else {
		return
	}
	sort.Slice(r.exemplars, func(i, j int) bool {
		return r.exemplars[i].DurationMs > r.exemplars[j].DurationMs
	})
}

// Snapshot returns recent traces newest-first (slow=true returns the
// exemplar store slowest-first instead), along with the lifetime count
// of traces recorded.
func (r *Recorder) Snapshot(slow bool) ([]*Trace, uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if slow {
		out := make([]*Trace, len(r.exemplars))
		copy(out, r.exemplars)
		return out, r.total
	}
	out := make([]*Trace, 0, len(r.ring))
	for i := 0; i < len(r.ring); i++ {
		// Walk backwards from the most recently written slot.
		idx := (r.next - 1 - i + 2*cap(r.ring)) % cap(r.ring)
		if idx < len(r.ring) && r.ring[idx] != nil {
			out = append(out, r.ring[idx])
		}
	}
	return out, r.total
}

// tracesResponse is the /debug/traces JSON envelope.
type tracesResponse struct {
	Total  uint64   `json:"total"`
	Traces []*Trace `json:"traces"`
}

// ServeHTTP renders the recorder as JSON. Query parameters:
//
//	min_ms=<float>  only traces at least this slow
//	tenant=<name>   only traces for one tenant
//	trace=<id>      only the trace with this id (searches exemplars too)
//	slow=1          serve the top-K slow exemplars instead of the ring
//	limit=<n>       cap the number of traces returned (default 50)
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if r == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	q := req.URL.Query()
	minMs, _ := strconv.ParseFloat(q.Get("min_ms"), 64)
	tenant := q.Get("tenant")
	traceID := q.Get("trace")
	slow := q.Get("slow") == "1"
	limit := 50
	if v := q.Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			limit = n
		}
	}
	traces, total := r.Snapshot(slow)
	if traceID != "" && !slow {
		// A trace that cycled out of the ring may survive as an exemplar.
		ex, _ := r.Snapshot(true)
		traces = append(traces, ex...)
	}
	out := make([]*Trace, 0, len(traces))
	seen := make(map[*Trace]bool, len(traces))
	for _, t := range traces {
		if seen[t] {
			continue
		}
		seen[t] = true
		if t.DurationMs < minMs {
			continue
		}
		if tenant != "" && t.Tenant != tenant {
			continue
		}
		if traceID != "" && t.TraceID != traceID {
			continue
		}
		out = append(out, t)
		if len(out) >= limit {
			break
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(tracesResponse{Total: total, Traces: out})
}
