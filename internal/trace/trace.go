// Package trace is the hand-rolled distributed tracing layer for the
// serving tiers — the observability counterpart to the hand-rolled
// metrics registry, with the same no-dependency discipline. A W3C-style
// traceparent header is minted at the edge (router or replica) for one
// in N requests, or accepted from clients, and the resulting span tree
// is threaded through context.Context: router admission, per-replica
// attempts, scatter shard legs, replica admission/cache, and the relax
// kernel itself. Completed traces land in a bounded per-process ring
// buffer served at GET /debug/traces (see Recorder).
//
// Replica-side spans additionally ride back to the router on a response
// header (SpansHeader), so one router trace shows the whole request
// path across processes without a collector.
//
// The untraced hot path costs one context value lookup and nothing
// else: every Span method is nil-safe, a request that is not sampled
// carries no span, and no allocation happens until a sampling decision
// says yes. CI pins this at zero allocs/op.
package trace

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"medrelax/internal/serving/metrics"
)

// TraceparentHeader is the W3C trace-context request header:
// version-traceid-parentid-flags, e.g.
// 00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01.
const TraceparentHeader = "Traceparent"

// SpansHeader carries a replica's finished spans back to the router on
// sampled responses (base64 JSON). The router strips it when merging;
// it never reaches clients through the proxy (copyResponse relays only
// Content-Type and Retry-After).
const SpansHeader = "Medrelax-Spans"

// flagSampled is the only traceparent flag bit this system interprets.
const flagSampled = 0x01

// maxSpansPerTrace bounds one trace's span list so a runaway batch
// cannot make a single ring entry arbitrarily large.
const maxSpansPerTrace = 1024

// Tag is one key/value annotation on a span.
type Tag struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Span is one timed operation within a trace. Fields are exported for
// JSON rendering; mutate only through StartChild/SetTag/End. A span is
// owned by the goroutine that started it until End, which hands it to
// the trace's collector.
type Span struct {
	Name    string  `json:"name"`
	Service string  `json:"service"`
	ID      string  `json:"spanId"`
	Parent  string  `json:"parent,omitempty"`
	Start   int64   `json:"startUnixNano"`
	DurMs   float64 `json:"durationMs"`
	Tags    []Tag   `json:"tags,omitempty"`

	// TraceID is carried per-trace in the recorder output; spans keep it
	// for the slow-log linkage and header injection.
	TraceID string `json:"-"`

	tr    *active
	start time.Time
}

// active collects one in-flight trace's finished spans; the root span's
// End hands the whole set to the tracer.
type active struct {
	tracer *Tracer

	mu      sync.Mutex
	root    *Span
	spans   []*Span
	dropped int
}

// spanKey carries the current span through context.Context. A context
// without the key is the untraced fast path: FromContext returns nil
// and every downstream span operation no-ops without allocating.
type spanKey struct{}

// FromContext returns the span the request is currently inside, or nil
// when the request is not sampled.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ContextWithSpan threads a span (typically a fresh child) into ctx so
// deeper layers parent onto it. A nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// StartChild opens a sub-span under s. Nil-safe: an untraced request
// flows through as nil all the way down.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	return &Span{
		Name:    name,
		Service: s.Service,
		ID:      newSpanID(),
		Parent:  s.ID,
		Start:   now.UnixNano(),
		TraceID: s.TraceID,
		tr:      s.tr,
		start:   now,
	}
}

// SetTag annotates the span. Call only from the goroutine that owns the
// span, before End.
func (s *Span) SetTag(k, v string) {
	if s == nil {
		return
	}
	s.Tags = append(s.Tags, Tag{K: k, V: v})
}

// Tag returns the value of the named tag ("" when absent).
func (s *Span) Tag(k string) string {
	if s == nil {
		return ""
	}
	for _, t := range s.Tags {
		if t.K == k {
			return t.V
		}
	}
	return ""
}

// End closes the span and hands it to the trace collector. Ending the
// root span completes the trace: it is assembled, recorded in the ring
// buffer, and observed by the histograms.
func (s *Span) End() {
	if s == nil || s.tr == nil {
		return
	}
	s.DurMs = float64(time.Since(s.start)) / float64(time.Millisecond)
	a := s.tr
	a.mu.Lock()
	if len(a.spans) < maxSpansPerTrace {
		a.spans = append(a.spans, s)
	} else {
		a.dropped++
	}
	root := s == a.root
	a.mu.Unlock()
	if root {
		a.tracer.finish(a)
	}
}

// Inject writes the span's trace context onto an outbound request
// header in traceparent form, with the sampled flag set. Nil-safe.
func (s *Span) Inject(h http.Header) {
	if s == nil {
		return
	}
	h.Set(TraceparentHeader, "00-"+s.TraceID+"-"+s.ID+"-01")
}

// Inject propagates the current span from ctx onto h; no-op when the
// request is untraced.
func Inject(ctx context.Context, h http.Header) {
	FromContext(ctx).Inject(h)
}

// EncodeFinished snapshots the spans finished so far in this span's
// trace as a base64 JSON header value — what a replica attaches to its
// response so the router can merge replica-side timing into its own
// trace. "" when there is nothing to report.
func (s *Span) EncodeFinished() string {
	if s == nil || s.tr == nil {
		return ""
	}
	a := s.tr
	a.mu.Lock()
	spans := make([]*Span, len(a.spans))
	copy(spans, a.spans)
	a.mu.Unlock()
	if len(spans) == 0 {
		return ""
	}
	b, err := json.Marshal(spans)
	if err != nil {
		return ""
	}
	return base64.StdEncoding.EncodeToString(b)
}

// AdoptEncoded merges spans encoded by EncodeFinished (on the far side
// of a proxied hop) into this span's trace. Malformed input is ignored
// — tracing must never fail a request.
func (s *Span) AdoptEncoded(enc string) {
	if s == nil || s.tr == nil || enc == "" {
		return
	}
	raw, err := base64.StdEncoding.DecodeString(enc)
	if err != nil {
		return
	}
	var spans []*Span
	if err := json.Unmarshal(raw, &spans); err != nil {
		return
	}
	a := s.tr
	a.mu.Lock()
	for _, sp := range spans {
		if sp == nil {
			continue
		}
		sp.TraceID = s.TraceID
		if len(a.spans) >= maxSpansPerTrace {
			a.dropped++
			continue
		}
		a.spans = append(a.spans, sp)
	}
	a.mu.Unlock()
}

// Tracer decides which requests are traced and where finished traces
// go. One Tracer per process; nil is a valid "tracing disabled" value
// for every method.
type Tracer struct {
	service     string
	sampleEvery uint64
	counter     atomic.Uint64
	rec         *Recorder

	spanHist atomic.Pointer[metrics.Histogram]
	durHist  atomic.Pointer[metrics.Histogram]
}

// NewTracer builds a tracer for service (tagged on every span it
// mints). sampleEvery N traces one in N requests that arrive without a
// traceparent header; 0 disables self-sampling, leaving only requests
// whose clients sent a sampled traceparent. rec may be nil (spans are
// timed and propagated but never retained).
func NewTracer(service string, sampleEvery int, rec *Recorder) *Tracer {
	if sampleEvery < 0 {
		sampleEvery = 0
	}
	return &Tracer{service: service, sampleEvery: uint64(sampleEvery), rec: rec}
}

// Recorder returns the tracer's ring buffer (nil when absent or the
// tracer itself is nil) — what /debug/traces serves.
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// BindMetrics registers the tracer's span-count and trace-duration
// histograms in reg under prefix (e.g. "medrelax" or "kbrouter").
// Idempotent; call during process setup, before traffic.
func (t *Tracer) BindMetrics(reg *metrics.Registry, prefix string) {
	if t == nil || reg == nil {
		return
	}
	t.spanHist.Store(reg.HistogramWith(prefix+"_trace_spans", "spans per completed trace", "", metrics.CountBuckets))
	t.durHist.Store(reg.Histogram(prefix+"_trace_duration_seconds", "end-to-end duration of completed traces", ""))
}

// StartRequest is the per-request sampling decision. A valid sampled
// traceparent in h joins that trace; an explicitly unsampled one (flags
// 00) is honored and not traced; no header rolls the 1-in-N die. The
// unsampled return is (ctx, nil) with zero allocations.
func (t *Tracer) StartRequest(ctx context.Context, h http.Header, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var traceID, parent string
	if tp := h.Get(TraceparentHeader); tp != "" {
		id, par, flags, ok := ParseTraceparent(tp)
		if ok {
			if flags&flagSampled == 0 {
				return ctx, nil
			}
			traceID, parent = id, par
		}
	}
	if traceID == "" {
		if t.sampleEvery == 0 || t.counter.Add(1)%t.sampleEvery != 0 {
			return ctx, nil
		}
		traceID = newTraceID()
	}
	now := time.Now()
	a := &active{tracer: t}
	sp := &Span{
		Name:    name,
		Service: t.service,
		ID:      newSpanID(),
		Parent:  parent,
		Start:   now.UnixNano(),
		TraceID: traceID,
		tr:      a,
		start:   now,
	}
	a.root = sp
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// finish assembles a completed trace and records it.
func (t *Tracer) finish(a *active) {
	a.mu.Lock()
	spans := a.spans
	dropped := a.dropped
	root := a.root
	a.spans = nil
	a.mu.Unlock()
	tr := &Trace{
		TraceID:      root.TraceID,
		Root:         root.Name,
		Service:      t.service,
		Tenant:       root.Tag("tenant"),
		Start:        time.Unix(0, root.Start),
		DurationMs:   root.DurMs,
		Spans:        spans,
		SpansDropped: dropped,
	}
	if h := t.spanHist.Load(); h != nil {
		h.Observe(float64(len(spans)))
	}
	if h := t.durHist.Load(); h != nil {
		h.Observe(root.DurMs / 1e3)
	}
	if t.rec != nil {
		t.rec.add(tr)
	}
}

// ParseTraceparent validates a traceparent header value and returns its
// trace-id, parent-id, and flags. ok is false for anything malformed:
// wrong field count, wrong lengths, non-hex, the all-zero ids, or the
// reserved version ff.
func ParseTraceparent(v string) (traceID, parentID string, flags byte, ok bool) {
	// 2 + 1 + 32 + 1 + 16 + 1 + 2
	if len(v) != 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return "", "", 0, false
	}
	ver, id, par, fl := v[0:2], v[3:35], v[36:52], v[53:55]
	if !isHex(ver) || !isHex(id) || !isHex(par) || !isHex(fl) {
		return "", "", 0, false
	}
	if ver == "ff" || allZero(id) || allZero(par) {
		return "", "", 0, false
	}
	f, err := hex.DecodeString(fl)
	if err != nil || len(f) != 1 {
		return "", "", 0, false
	}
	return id, par, f[0], true
}

// NewTraceparent mints a sampled traceparent header value for a client
// (cmd/loadgen) that wants its request traced end to end. Returns the
// header value and the embedded trace id.
func NewTraceparent() (header, traceID string) {
	traceID = newTraceID()
	return "00-" + traceID + "-" + newSpanID() + "-01", traceID
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// idRNG seeds span/trace id generation once per process; the global
// locked source keeps concurrent minting safe.
var idMu sync.Mutex
var idRNG = rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(rand.Uint64())))

func randUint64() uint64 {
	idMu.Lock()
	defer idMu.Unlock()
	return idRNG.Uint64()
}

func newTraceID() string {
	var b [16]byte
	for {
		binary.BigEndian.PutUint64(b[:8], randUint64())
		binary.BigEndian.PutUint64(b[8:], randUint64())
		if b != [16]byte{} {
			return hex.EncodeToString(b[:])
		}
	}
}

func newSpanID() string {
	var b [8]byte
	for {
		binary.BigEndian.PutUint64(b[:], randUint64())
		if b != [8]byte{} {
			return hex.EncodeToString(b[:])
		}
	}
}
