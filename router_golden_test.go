package medrelax

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"net"

	"medrelax/internal/eval"
	"medrelax/internal/retry"
	"medrelax/internal/router"
	"medrelax/internal/server"
	"medrelax/internal/serving"
)

// bootReplicas starts n full serving stacks (serving.Engine + API server)
// over the shared system snapshot — the same wiring cmd/kbserver uses —
// and returns their addresses plus a closer.
func bootReplicas(t *testing.T, sys *System, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		opts := serving.DefaultOptions()
		eng := serving.NewEngine(sys.Engine, opts)
		srv := httptest.NewServer(eng.Handler(server.New(eng).Handler()))
		t.Cleanup(srv.Close)
		addrs[i] = strings.TrimPrefix(srv.URL, "http://")
	}
	return addrs
}

func bootRouter(t *testing.T, replicas []string) *router.Router {
	t.Helper()
	opts := router.DefaultOptions()
	opts.Replicas = replicas
	opts.ProbeInterval = 50 * time.Millisecond
	opts.Retry = retry.Policy{MaxRetries: 2, Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond}
	rt := router.New(opts)
	rt.Start()
	t.Cleanup(rt.Stop)
	return rt
}

func httpGet(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func httpPost(t *testing.T, base, path string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, respBody
}

// TestRouterByteIdentity is the distributed tier's core contract, pinned
// end to end over real serving stacks: a GET /relax answered through
// kbrouter and a POST /relax/batch scattered across three replicas must
// be byte-identical to the same requests against a single replica. The
// replicas serve the same snapshot the golden file
// (testdata/relax_golden.json) pins, so transitively the routed answers
// are pinned too.
func TestRouterByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("boots four HTTP stacks")
	}
	sys := sharedSystem(t)
	replicas := bootReplicas(t, sys, 3)
	rt := bootRouter(t, replicas)
	routerSrv := httptest.NewServer(rt.Handler())
	defer routerSrv.Close()
	direct := "http://" + replicas[0]

	queries := eval.SelectQueries(sys.Med, sys.Oracle, 25)
	if len(queries) == 0 {
		t.Fatal("no golden queries selected")
	}

	// Single-query proxy path.
	for _, q := range queries {
		v := url.Values{"term": {q.Term}, "k": {"10"}}
		if q.Ctx != nil {
			v.Set("context", q.Ctx.String())
		}
		path := "/relax?" + v.Encode()
		dStatus, dBody := httpGet(t, direct, path)
		rStatus, rBody := httpGet(t, routerSrv.URL, path)
		if dStatus != rStatus {
			t.Fatalf("term %q: status %d via router, %d direct", q.Term, rStatus, dStatus)
		}
		if !bytes.Equal(dBody, rBody) {
			t.Fatalf("term %q: routed response diverged from single-replica bytes:\n direct: %s\n router: %s",
				q.Term, dBody, rBody)
		}
	}

	// Scatter-gather path: one batch covering every golden query, plus
	// invalid items so per-item error shapes cross the router too.
	type item struct {
		Term    string `json:"term"`
		Context string `json:"context,omitempty"`
		K       int    `json:"k,omitempty"`
	}
	items := make([]item, 0, len(queries)+2)
	for _, q := range queries {
		it := item{Term: q.Term, K: 10}
		if q.Ctx != nil {
			it.Context = q.Ctx.String()
		}
		items = append(items, it)
	}
	items = append(items,
		item{Term: "definitely-not-a-term-xyzzy", K: 5},
		item{Term: queries[0].Term, K: 5000}, // per-item 400
	)
	body, err := json.Marshal(map[string]any{"queries": items})
	if err != nil {
		t.Fatal(err)
	}
	dStatus, dBody := httpPost(t, direct, "/relax/batch", body)
	rStatus, rBody := httpPost(t, routerSrv.URL, "/relax/batch", body)
	if dStatus != http.StatusOK || rStatus != http.StatusOK {
		t.Fatalf("batch status: direct %d, router %d", dStatus, rStatus)
	}
	if !bytes.Equal(dBody, rBody) {
		t.Fatalf("scatter-gather batch diverged from single-replica bytes:\n direct: %s\n router: %s", dBody, rBody)
	}

	// The scatter actually spread: more than one replica saw traffic.
	var scrape bytes.Buffer
	if err := rt.Registry().WritePrometheus(&scrape); err != nil {
		t.Fatal(err)
	}
	hit := 0
	for _, rep := range replicas {
		if strings.Contains(scrape.String(), fmt.Sprintf("kbrouter_replica_requests_total{replica=%q}", rep)) {
			hit++
		}
	}
	if hit < 2 {
		t.Errorf("only %d replicas saw traffic; placement is not spreading", hit)
	}
}

// TestRouterKillRecovery kills one live replica under the router and
// requires every subsequent request to succeed (failover), with the
// replica marked down and then recovered after restart on the same
// address — the in-process version of the chaos harness's replica-kill
// drill.
func TestRouterKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("boots four HTTP stacks")
	}
	sys := sharedSystem(t)

	// Hand-build replicas so one can be killed and rebound on its address.
	servers := make([]*httptest.Server, 3)
	addrs := make([]string, 3)
	mkHandler := func() http.Handler {
		eng := serving.NewEngine(sys.Engine, serving.DefaultOptions())
		return eng.Handler(server.New(eng).Handler())
	}
	for i := range servers {
		servers[i] = httptest.NewServer(mkHandler())
		addrs[i] = strings.TrimPrefix(servers[i].URL, "http://")
		defer servers[i].Close()
	}
	opts := router.DefaultOptions()
	opts.Replicas = addrs
	opts.ProbeInterval = 20 * time.Millisecond
	opts.ProbeTimeout = 100 * time.Millisecond
	opts.FailAfter = 1
	opts.Retry = retry.Policy{MaxRetries: 2, Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond}
	rt := router.New(opts)
	rt.Start()
	defer rt.Stop()
	routerSrv := httptest.NewServer(rt.Handler())
	defer routerSrv.Close()

	queries := eval.SelectQueries(sys.Med, sys.Oracle, 10)
	ask := func(phase string) {
		for _, q := range queries {
			v := url.Values{"term": {q.Term}, "k": {"10"}}
			status, body := httpGet(t, routerSrv.URL, "/relax?"+v.Encode())
			if status != http.StatusOK {
				t.Fatalf("%s: term %q: status %d: %s", phase, q.Term, status, body)
			}
		}
	}
	ask("before kill")

	victim := servers[1]
	victimAddr := addrs[1]
	victim.CloseClientConnections()
	victim.Close()
	ask("after kill") // failover must hide the dead replica

	deadline := time.Now().Add(2 * time.Second)
	for rt.ReplicaHealthy(victimAddr) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if rt.ReplicaHealthy(victimAddr) {
		t.Fatal("killed replica never marked unhealthy")
	}

	// Restart on the same address (the chaos drill's rebind) and require
	// the active probe to restore it.
	lis, err := rebindListener(victimAddr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", victimAddr, err)
	}
	restarted := &http.Server{Handler: mkHandler()}
	go restarted.Serve(lis)
	defer restarted.Close()

	deadline = time.Now().Add(5 * time.Second)
	for !rt.ReplicaHealthy(victimAddr) && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if !rt.ReplicaHealthy(victimAddr) {
		t.Fatal("restarted replica never marked healthy again")
	}
	ask("after recovery")
}

// rebindListener reclaims a just-freed address for the restart phase; the
// OS may briefly hold the port, so bind with a short retry.
func rebindListener(addr string) (net.Listener, error) {
	var lastErr error
	for i := 0; i < 50; i++ {
		lis, err := net.Listen("tcp", addr)
		if err == nil {
			return lis, nil
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	return nil, lastErr
}
