package medrelax

// Online-phase performance benchmarks: single-request latency and
// allocation profile of Algorithm 2, parallel throughput of the shared
// (lock-free) relaxation pipeline, and the dense graph kernel across world
// sizes. cmd/relaxbench runs the same workloads and records the numbers in
// BENCH_relax.json; `go test -bench=BenchmarkRelax` reproduces them.

import (
	"fmt"
	"sync"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/eval"
	"medrelax/internal/synthkb"
)

// BenchmarkRelaxLatency measures one full RelaxConcept call — candidate
// gathering on the dense kernel, Equation 5 scoring through the sharded
// subsumer cache, ranking, and k-instance consumption — over the paper's
// query mix.
func BenchmarkRelaxLatency(b *testing.B) {
	sys := sharedSystem(b)
	queries := eval.SelectQueries(sys.Med, sys.Oracle, 32)
	if len(queries) == 0 {
		b.Fatal("no queries selected")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		sys.Relaxer.RelaxConcept(q.Concept, q.Ctx, 10)
	}
}

// BenchmarkRelaxParallel measures throughput of concurrent relaxations
// against ONE shared Relaxer — the /relax serving scenario. Compare its
// per-op time against BenchmarkRelaxLatency to see parallel speedup; the
// pre-optimization server serialized every request behind a global mutex,
// pinning this number to the serial latency regardless of cores.
func BenchmarkRelaxParallel(b *testing.B) {
	sys := sharedSystem(b)
	queries := eval.SelectQueries(sys.Med, sys.Oracle, 32)
	if len(queries) == 0 {
		b.Fatal("no queries selected")
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := queries[i%len(queries)]
			sys.Relaxer.RelaxConcept(q.Concept, q.Ctx, 10)
			i++
		}
	})
}

var (
	accelOnce sync.Once
	accelMatR *core.Relaxer
	accelIdxR *core.Relaxer
)

// accelRelaxers builds (once) two relaxers over the shared system's
// ingestion: one serving from a full-head materialized top-k store, one
// through the posting-list candidate index. Both are byte-identical to
// live traversal (TestAcceleratedPathsMatchGolden); here they are timed.
func accelRelaxers(tb testing.TB) (*core.Relaxer, *core.Relaxer) {
	tb.Helper()
	sys := sharedSystem(tb)
	accelOnce.Do(func() {
		ing := sys.Ingestion
		sim := core.NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
		ropts := sys.Config.Relax
		mat := core.MaterializeTopK(ing, sim, core.MaterializeOptions{
			Enabled: true, Relax: ropts,
			HeadFraction: 1, HeadMax: -1,
			Contexts: ing.Contexts,
		})
		cidx := core.BuildCandidateIndex(ing, sim, core.CandidateIndexOptions{
			Enabled: true, Radius: ropts.MaxRadius,
		})
		accelMatR = core.NewRelaxer(ing, sim, sys.Mapper, ropts)
		if !accelMatR.SetMaterialized(mat) {
			panic("bench: materialized store refused by a same-options relaxer")
		}
		accelIdxR = core.NewRelaxer(ing, sim, sys.Mapper, ropts)
		if !accelIdxR.SetCandidateIndex(cidx) {
			panic("bench: candidate index refused by a same-options relaxer")
		}
	})
	return accelMatR, accelIdxR
}

// BenchmarkRelaxUncached measures the uncached request path through each
// serving tier over the same query mix: pure live traversal, the
// posting-list candidate index, and the materialized top-k store. The CI
// benchmem smoke step pins the allocation profile of the accelerated
// tiers — an alloc regression on the miss path fails the build before it
// reaches a latency chart.
func BenchmarkRelaxUncached(b *testing.B) {
	sys := sharedSystem(b)
	queries := eval.SelectQueries(sys.Med, sys.Oracle, 32)
	if len(queries) == 0 {
		b.Fatal("no queries selected")
	}
	matR, idxR := accelRelaxers(b)
	cases := []struct {
		name string
		r    *core.Relaxer
	}{
		{"live", sys.Relaxer},
		{"indexed", idxR},
		{"materialized", matR},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				c.r.RelaxConcept(q.Concept, q.Ctx, 10)
			}
		})
	}
}

// benchGraph builds a seeded synthetic world and grows it to the target
// concept count (the generator's own vocabulary saturates near 6k; extra
// scale comes from deterministic leaf variants, matching the equivalence
// tests' construction).
func benchGraph(tb testing.TB, target int) *eks.Graph {
	tb.Helper()
	cpp := 1
	if target > 2000 {
		cpp = 20
	}
	w, err := synthkb.Generate(synthkb.Config{Seed: 42, ConditionsPerPair: cpp})
	if err != nil {
		tb.Fatal(err)
	}
	g := w.Graph
	next := eks.ConceptID(1)
	for _, id := range g.ConceptIDs() {
		if id >= next {
			next = id + 1
		}
	}
	for i := 0; g.Len() < target; i++ {
		parent := w.Findings[i%len(w.Findings)]
		if err := g.AddConcept(eks.Concept{ID: next, Name: fmt.Sprintf("variant %d of %d", i, parent)}); err != nil {
			tb.Fatal(err)
		}
		if err := g.AddSubsumption(next, parent); err != nil {
			tb.Fatal(err)
		}
		next++
	}
	g.Freeze()
	return g
}

// BenchmarkSubsumerDistances exercises the dense kernel's upward Dijkstra
// (the workhorse of Equation 5) across world sizes 10^3..10^5. The
// map-returning adapter is measured because that is the public API the
// similarity layer consumed before SubsumerVec existed; SubsumerVec is
// benchmarked alongside to show the allocation-lean path used by the
// sharded cache.
func BenchmarkSubsumerDistances(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		g := benchGraph(b, n)
		ids := g.ConceptIDs()
		b.Run(fmt.Sprintf("map/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.SubsumerDistances(ids[(i*37)%len(ids)])
			}
		})
		b.Run(fmt.Sprintf("vec/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.SubsumerVec(ids[(i*37)%len(ids)])
			}
		})
	}
}
