module medrelax

go 1.22
