package medrelax

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (Section 7), plus the ablation benches DESIGN.md calls
// out. Each table bench reports the reproduced metric values through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the numbers
// EXPERIMENTS.md records; cmd/benchtables prints the same rows with the
// paper's values side by side.

import (
	"fmt"
	"math"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/eval"
	"medrelax/internal/match"
	"medrelax/internal/synthkb"
)

// BenchmarkTable1MappingAccuracy reproduces Table 1: precision/recall/F1 of
// the EXACT, EDIT and EMBEDDING instance-to-concept mapping methods against
// the generator's gold mappings.
func BenchmarkTable1MappingAccuracy(b *testing.B) {
	sys := sharedSystem(b)
	var rows []eval.MapperScore
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = sys.Table1()
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.Precision, r.Method+"_P")
		b.ReportMetric(r.Recall, r.Method+"_R")
		b.ReportMetric(r.F1, r.Method+"_F1")
	}
}

// BenchmarkTable2OverallEffectiveness reproduces Table 2: P@10/R@10/F1 of
// QR, its ablations, the IC baseline and the two embedding baselines over
// 100 condition queries.
func BenchmarkTable2OverallEffectiveness(b *testing.B) {
	sys := sharedSystem(b)
	var rows []eval.MethodScore
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = sys.Table2(100, 10)
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.F1, r.Method+"_F1")
	}
}

// BenchmarkTable3UserStudy reproduces Table 3: the simulated 20-participant
// user study over the conversational interface with and without QR.
func BenchmarkTable3UserStudy(b *testing.B) {
	sys := sharedSystem(b)
	var res eval.StudyResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sys.Table3(eval.StudyConfig{})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.StopTimer()
	b.ReportMetric(res.WithQR.T1.Average(), "QR_T1_avg")
	b.ReportMetric(res.WithQR.T2.Average(), "QR_T2_avg")
	b.ReportMetric(res.WithoutQR.T1.Average(), "noQR_T1_avg")
	b.ReportMetric(res.WithoutQR.T2.Average(), "noQR_T2_avg")
}

// BenchmarkFigure4FrequencyPropagation regenerates the Figure 4 snippet:
// per-context frequency propagation over the paper's SNOMED fragment,
// asserting the paper's exact totals (19164 / 1656).
func BenchmarkFigure4FrequencyPropagation(b *testing.B) {
	g, direct := synthkb.Figure4Fixture()
	var ft *core.FrequencyTable
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := core.BuildFrequencyTableFromDirectCounts(g, direct, core.FrequencyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		ft = t
	}
	b.StopTimer()
	ind := ft.Raw(synthkb.Fig4PainHeadNeck, synthkb.Fig4CtxIndication)
	risk := ft.Raw(synthkb.Fig4PainHeadNeck, synthkb.Fig4CtxRisk)
	if ind != 19164 || risk != 1656 {
		b.Fatalf("figure 4 totals = %v/%v, want 19164/1656", ind, risk)
	}
	b.ReportMetric(ind, "indication_freq")
	b.ReportMetric(risk, "risk_freq")
}

// BenchmarkFigure5Customization regenerates Figure 5: the shortcut edge
// turning a 3-hop ancestor into a 1-hop neighbour without changing the
// semantic distance.
func BenchmarkFigure5Customization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := synthkb.Figure5Fixture()
		if err := g.AddShortcutEdge(synthkb.Fig5CKDStage1HT, synthkb.Fig5Kidney, 3); err != nil {
			b.Fatal(err)
		}
		if d, _ := g.SemanticDistance(synthkb.Fig5CKDStage1HT, synthkb.Fig5Kidney); d != 3 {
			b.Fatalf("semantic distance = %d, want 3", d)
		}
	}
}

// BenchmarkFigure6PathPenalty regenerates Figure 6: the asymmetric
// direction-weighted path penalties of Equation 4 (0.9^6 vs 0.9^3).
func BenchmarkFigure6PathPenalty(b *testing.B) {
	g := synthkb.Figure6Fixture()
	w := core.DefaultPathWeights()
	var p1w, p2w float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p1, _ := g.ShortestSemanticPath(synthkb.Fig6Pneumonia, synthkb.Fig6LRTI)
		p2, _ := g.ShortestSemanticPath(synthkb.Fig6LRTI, synthkb.Fig6Pneumonia)
		p1w, p2w = w.PathWeight(p1), w.PathWeight(p2)
	}
	b.StopTimer()
	if math.Abs(p1w-math.Pow(0.9, 6)) > 1e-12 || math.Abs(p2w-math.Pow(0.9, 3)) > 1e-12 {
		b.Fatalf("penalties = %v/%v, want 0.9^6/0.9^3", p1w, p2w)
	}
	b.ReportMetric(p1w, "pneumonia_to_LRTI")
	b.ReportMetric(p2w, "LRTI_to_pneumonia")
}

// BenchmarkOnlineRelaxation measures the latency of one online relaxation
// (Algorithm 2) on the default world — the paper's Θ(N log N) query path.
func BenchmarkOnlineRelaxation(b *testing.B) {
	sys := sharedSystem(b)
	queries := eval.SelectQueries(sys.Med, sys.Oracle, 50)
	if len(queries) == 0 {
		b.Fatal("no queries")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := sys.Relaxer.RelaxTerm(q.Term, q.Ctx, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOfflineIngestion measures the offline phase (Algorithm 1) on a
// fresh copy of the default world — context generation, mapping, frequency
// computation and customization.
func BenchmarkOfflineIngestion(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		world, err := synthkb.Generate(cfg.EKS)
		if err != nil {
			b.Fatal(err)
		}
		sys := sharedSystem(b)
		mapper := match.NewExact(world.Graph)
		b.StartTimer()
		if _, err := core.Ingest(sys.Med.Ontology, sys.Med.Store, world.Graph, sys.Corpus, mapper, core.IngestOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNLQExperiment runs the Section 6.2 query-answerability
// comparison (beyond the paper's tables; see EXPERIMENTS.md).
func BenchmarkNLQExperiment(b *testing.B) {
	sys := sharedSystem(b)
	var res eval.NLQResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = sys.NLQExperiment(eval.NLQConfig{})
	}
	b.StopTimer()
	b.ReportMetric(100*res.WithQR.AnsweredRate(), "QR_answered_pct")
	b.ReportMetric(100*res.WithoutQR.AnsweredRate(), "noQR_answered_pct")
}

// ---- Ablations (DESIGN.md) ----

// ablationSystem builds a fresh system with the given tweaks; it is not
// cached because ablations change the build.
func ablationSystem(b *testing.B, mutate func(*Config)) *System {
	b.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func qrF1(b *testing.B, sys *System) float64 {
	b.Helper()
	for _, r := range sys.Table2(100, 10) {
		if r.Method == "QR" {
			return r.F1
		}
	}
	b.Fatal("QR row missing")
	return 0
}

// BenchmarkAblationShortcutEdges compares online relaxation with and
// without the offline customization: without shortcut edges, the same
// fixed radius reaches far fewer flagged candidates, so recall collapses —
// the motivation for Algorithm 1's lines 19–23.
func BenchmarkAblationShortcutEdges(b *testing.B) {
	if testing.Short() {
		b.Skip("ablation builds two systems")
	}
	withS := ablationSystem(b, nil)
	withoutS := ablationSystem(b, func(c *Config) { c.Ingest.DisableShortcuts = true; c.Relax.DynamicRadius = false })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(qrF1(b, withS), "F1_with_shortcuts")
		b.ReportMetric(qrF1(b, withoutS), "F1_without_shortcuts")
		b.ReportMetric(float64(withS.Ingestion.ShortcutsAdded), "shortcut_edges")
	}
}

// BenchmarkAblationTFIDF compares raw frequency counts against the tf-idf
// adjusted counts the paper uses to counter document-frequency bias.
func BenchmarkAblationTFIDF(b *testing.B) {
	if testing.Short() {
		b.Skip("ablation builds two systems")
	}
	raw := ablationSystem(b, nil)
	tfidf := ablationSystem(b, func(c *Config) { c.Ingest.Frequency.UseTFIDF = true })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(qrF1(b, raw), "F1_raw_counts")
		b.ReportMetric(qrF1(b, tfidf), "F1_tfidf")
	}
}

// BenchmarkAblationGenWeight sweeps the generalization hop weight of
// Equation 4 around the paper's empirical 0.9.
func BenchmarkAblationGenWeight(b *testing.B) {
	sys := sharedSystem(b)
	queries := eval.SelectQueries(sys.Med, sys.Oracle, 100)
	for _, w := range []float64{0.5, 0.7, 0.9, 1.0} {
		b.Run(fmt.Sprintf("w=%.1f", w), func(b *testing.B) {
			sim := core.NewSimilarity(sys.Ingestion.Graph, sys.Ingestion.Frequencies, sys.Ingestion.Ontology)
			sim.Weights = core.PathWeights{Generalization: w, Specialization: 1}
			relaxer := core.NewRelaxer(sys.Ingestion, sim, sys.Mapper, sys.Config.Relax)
			var f1 float64
			for i := 0; i < b.N; i++ {
				f1 = scoreRelaxer(sys, relaxer, queries)
			}
			b.ReportMetric(f1, "F1")
		})
	}
}

// BenchmarkAblationRadius sweeps the fixed search radius of Algorithm 2.
func BenchmarkAblationRadius(b *testing.B) {
	sys := sharedSystem(b)
	queries := eval.SelectQueries(sys.Med, sys.Oracle, 100)
	for _, r := range []int{1, 2, 3, 5} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			sim := core.NewSimilarity(sys.Ingestion.Graph, sys.Ingestion.Frequencies, sys.Ingestion.Ontology)
			relaxer := core.NewRelaxer(sys.Ingestion, sim, sys.Mapper, core.RelaxOptions{Radius: r})
			var f1 float64
			for i := 0; i < b.N; i++ {
				f1 = scoreRelaxer(sys, relaxer, queries)
			}
			b.ReportMetric(f1, "F1")
		})
	}
}

// BenchmarkAblationMapper ties Table 1 to Table 2: the mapping method used
// during ingestion changes which concepts get flagged and therefore the
// downstream relaxation quality.
func BenchmarkAblationMapper(b *testing.B) {
	if testing.Short() {
		b.Skip("ablation builds three systems")
	}
	for _, name := range []string{"EXACT", "EDIT", "EMBEDDING"} {
		b.Run(name, func(b *testing.B) {
			sys := ablationSystem(b, func(c *Config) { c.MapperName = name })
			var f1 float64
			for i := 0; i < b.N; i++ {
				f1 = qrF1(b, sys)
			}
			b.ReportMetric(f1, "F1")
			b.ReportMetric(float64(len(sys.Ingestion.Flagged)), "flagged")
		})
	}
}

// scoreRelaxer evaluates one relaxer configuration as a Table 2 style F1.
func scoreRelaxer(sys *System, relaxer *core.Relaxer, queries []eval.Query) float64 {
	var ps, rs []float64
	for _, q := range queries {
		relevant := sys.Oracle.RelevantSet(q.Concept, q.Ctx, sys.Ingestion.Flagged)
		results, err := relaxer.RelaxTerm(q.Term, q.Ctx, 0)
		if err != nil {
			ps = append(ps, 0)
			rs = append(rs, 0)
			continue
		}
		judged := make([]bool, 0, 10)
		for _, res := range results {
			if len(judged) == 10 {
				break
			}
			judged = append(judged, res.Concept != q.Concept && sys.Oracle.Relevant(q.Concept, res.Concept, q.Ctx))
		}
		p, r := eval.PrecisionRecallAtK(judged, 10, len(relevant))
		ps = append(ps, p)
		rs = append(rs, r)
	}
	return eval.MeanPRF(ps, rs).F1
}

// BenchmarkEKSNeighborSearch micro-benchmarks the candidate-gathering BFS
// of Algorithm 2 on the customized graph.
func BenchmarkEKSNeighborSearch(b *testing.B) {
	sys := sharedSystem(b)
	var ids []eks.ConceptID
	for id := range sys.Ingestion.Flagged {
		ids = append(ids, id)
		if len(ids) == 64 {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.World.Graph.NeighborsWithinHops(ids[i%len(ids)], 3)
	}
}

// BenchmarkSimilarity micro-benchmarks one Equation 5 evaluation.
func BenchmarkSimilarity(b *testing.B) {
	sys := sharedSystem(b)
	sim := core.NewSimilarity(sys.Ingestion.Graph, sys.Ingestion.Frequencies, sys.Ingestion.Ontology)
	var a, c eks.ConceptID
	for id := range sys.Ingestion.Flagged {
		if a == 0 {
			a = id
		} else if c == 0 {
			c = id
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Sim(a, c, nil)
	}
}
