package medrelax

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"medrelax/internal/core"
	"medrelax/internal/eval"
)

// GoldenEntry pins one query's ranked relaxation output: the full ranked
// candidate list (k=0) and the k=10 instance-bounded prefix. It backs the
// regression harness that asserts the online phase's output is identical
// across performance refactors (cmd/relaxgolden regenerates the file,
// TestRelaxMatchesGolden asserts it).
type GoldenEntry struct {
	Term    string         `json:"term"`
	Concept int64          `json:"concept"`
	Context string         `json:"context"`
	Ranked  []GoldenResult `json:"ranked"`
	TopK    []GoldenResult `json:"topk"`
}

// GoldenResult is one pinned ranked candidate.
type GoldenResult struct {
	Concept   int64   `json:"concept"`
	Score     float64 `json:"score"`
	Hops      int     `json:"hops"`
	Instances []int64 `json:"instances"`
}

// GoldenEntries runs every query through the system's relaxer and captures
// the ranked output, both context-sensitive and with k=10 truncation.
func GoldenEntries(sys *System, queries []eval.Query) []GoldenEntry {
	entries := make([]GoldenEntry, 0, len(queries))
	for _, q := range queries {
		e := GoldenEntry{Term: q.Term, Concept: int64(q.Concept)}
		if q.Ctx != nil {
			e.Context = q.Ctx.String()
		}
		e.Ranked = goldenResults(sys.Relaxer.RankedCandidates(q.Concept, q.Ctx))
		e.TopK = goldenResults(sys.Relaxer.RelaxConcept(q.Concept, q.Ctx, 10))
		entries = append(entries, e)
	}
	return entries
}

func goldenResults(results []core.Result) []GoldenResult {
	out := make([]GoldenResult, 0, len(results))
	for _, r := range results {
		gr := GoldenResult{Concept: int64(r.Concept), Score: r.Score, Hops: r.Hops}
		for _, iid := range r.Instances {
			gr.Instances = append(gr.Instances, int64(iid))
		}
		out = append(out, gr)
	}
	return out
}

// GoldenSummary condenses one GoldenEntry into a content hash: the SHA-256
// of the entry's canonical JSON. Committing summaries instead of the full
// ranked lists keeps the pinned file small while still failing on any
// change to concept order, score bits, hop counts or instance lists.
type GoldenSummary struct {
	Term      string `json:"term"`
	Concept   int64  `json:"concept"`
	Context   string `json:"context"`
	RankedLen int    `json:"rankedLen"`
	TopKLen   int    `json:"topkLen"`
	Hash      string `json:"hash"`
}

// Summarize hashes each entry's canonical JSON form.
func Summarize(entries []GoldenEntry) ([]GoldenSummary, error) {
	out := make([]GoldenSummary, 0, len(entries))
	for _, e := range entries {
		data, err := json.Marshal(e)
		if err != nil {
			return nil, fmt.Errorf("medrelax: marshaling golden entry %q: %w", e.Term, err)
		}
		sum := sha256.Sum256(data)
		out = append(out, GoldenSummary{
			Term:      e.Term,
			Concept:   e.Concept,
			Context:   e.Context,
			RankedLen: len(e.Ranked),
			TopKLen:   len(e.TopK),
			Hash:      hex.EncodeToString(sum[:]),
		})
	}
	return out, nil
}
