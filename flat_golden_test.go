package medrelax

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/eval"
	"medrelax/internal/persist"
)

// TestFlatBundleMatchesGolden pins the zero-copy flat (v4) bundle against
// testdata/relax_golden.json: the shared system's ingestion — carrying the
// full-head materialized store and the candidate index — is saved flat,
// reopened through the mmap path, and re-answers every golden query over
// the flat-mapped columns. Live traversal, the materialized store, the
// candidate index, and the shared-scratch batch path must all hash
// identically to the pinned live output; any byte of divergence between a
// flat-mapped world and the heap world it was saved from fails here.
func TestFlatBundleMatchesGolden(t *testing.T) {
	data, err := os.ReadFile("testdata/relax_golden.json")
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var want []GoldenSummary
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing golden file: %v", err)
	}

	sys := sharedSystem(t)
	queries := eval.SelectQueries(sys.Med, sys.Oracle, len(want))
	ing := sys.Ingestion
	sim := core.NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	ropts := sys.Config.Relax

	// Same acceleration shapes the accel golden test pins, so the flat
	// bundle round-trips them too. Attached to a shallow copy: the shared
	// system's ingestion stays untouched for other tests.
	cp := *ing
	cp.Materialized = core.MaterializeTopK(ing, sim, core.MaterializeOptions{
		Enabled: true, Relax: ropts,
		HeadFraction: 1, HeadMax: -1, MaxPerQuery: -1,
		Contexts: ing.Contexts,
	})
	cp.Candidates = core.BuildCandidateIndex(ing, sim, core.CandidateIndexOptions{
		Enabled: true, Radius: ropts.MaxRadius,
	})

	path := filepath.Join(t.TempDir(), "golden.flat")
	if err := persist.SaveFileAtomic(path, &cp, persist.FormatFlat); err != nil {
		t.Fatalf("saving flat bundle: %v", err)
	}
	restored, err := persist.OpenFlat(path)
	if err != nil {
		t.Fatalf("opening flat bundle: %v", err)
	}
	if restored.Backing == nil {
		t.Fatal("flat bundle restored without a backing")
	}
	rsim := core.NewSimilarity(restored.Graph, restored.Frequencies, restored.Ontology)
	newRelaxer := func() *core.Relaxer {
		return core.NewRelaxer(restored, rsim, sys.Mapper, ropts)
	}

	assertGolden := func(t *testing.T, entries []GoldenEntry) {
		t.Helper()
		got, err := Summarize(entries)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("got %d summaries, want %d", len(got), len(want))
		}
		for i := range want {
			w, g := want[i], got[i]
			if g.Term != w.Term || g.Concept != w.Concept || g.Context != w.Context {
				t.Errorf("query %d: identity mismatch: got (%q, %d, %q), want (%q, %d, %q)",
					i, g.Term, g.Concept, g.Context, w.Term, w.Concept, w.Context)
				continue
			}
			if g.RankedLen != w.RankedLen || g.TopKLen != w.TopKLen {
				t.Errorf("query %d (%q): result counts changed: ranked %d->%d, topk %d->%d",
					i, w.Term, w.RankedLen, g.RankedLen, w.TopKLen, g.TopKLen)
			}
			if g.Hash != w.Hash {
				t.Errorf("query %d (%q): flat-mapped output diverged from the pinned live traversal", i, w.Term)
			}
		}
	}
	collect := func(r *core.Relaxer) []GoldenEntry {
		entries := make([]GoldenEntry, 0, len(queries))
		for _, q := range queries {
			e := GoldenEntry{Term: q.Term, Concept: int64(q.Concept)}
			if q.Ctx != nil {
				e.Context = q.Ctx.String()
			}
			e.Ranked = goldenResults(r.RankedCandidates(q.Concept, q.Ctx))
			e.TopK = goldenResults(r.RelaxConcept(q.Concept, q.Ctx, 10))
			entries = append(entries, e)
		}
		return entries
	}

	t.Run("live", func(t *testing.T) {
		assertGolden(t, collect(newRelaxer()))
	})

	t.Run("materialized", func(t *testing.T) {
		r := newRelaxer()
		if !r.SetMaterialized(restored.Materialized) {
			t.Fatal("flat materialized store refused by a same-options relaxer")
		}
		assertGolden(t, collect(r))
		if _, m, _ := r.PathCounts(); m == 0 {
			t.Error("no golden query was served from the flat materialized store")
		}
	})

	t.Run("indexed", func(t *testing.T) {
		r := newRelaxer()
		if !r.SetCandidateIndex(restored.Candidates) {
			t.Fatal("flat candidate index refused by a same-options relaxer")
		}
		assertGolden(t, collect(r))
		if _, _, ix := r.PathCounts(); ix == 0 {
			t.Error("no golden query was served through the flat candidate index")
		}
	})

	t.Run("batch", func(t *testing.T) {
		r := newRelaxer()
		if !r.SetMaterialized(restored.Materialized) {
			t.Fatal("flat materialized store refused by a same-options relaxer")
		}
		if !r.SetCandidateIndex(restored.Candidates) {
			t.Fatal("flat candidate index refused by a same-options relaxer")
		}
		batch := make([]core.BatchQuery, 0, 2*len(queries))
		for _, q := range queries {
			batch = append(batch,
				core.BatchQuery{Concept: q.Concept, UseConcept: true, Ctx: q.Ctx, K: 0},
				core.BatchQuery{Concept: q.Concept, UseConcept: true, Ctx: q.Ctx, K: 10},
			)
		}
		results, errs := r.RelaxBatchContext(context.Background(), batch)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("batch item %d: %v", i, err)
			}
		}
		entries := make([]GoldenEntry, 0, len(queries))
		for i, q := range queries {
			e := GoldenEntry{Term: q.Term, Concept: int64(q.Concept)}
			if q.Ctx != nil {
				e.Context = q.Ctx.String()
			}
			e.Ranked = goldenResults(results[2*i])
			e.TopK = goldenResults(results[2*i+1])
			entries = append(entries, e)
		}
		assertGolden(t, entries)
	})
}
