package medrelax

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/eval"
)

// TestRelaxBatchMatchesGolden pins the batch read path against
// testdata/relax_golden.json: every golden query is re-answered through
// RelaxBatchContext — the shared-scratch path POST /relax/batch rides —
// and the reconstructed entries must hash identically to the sequential
// seed implementation. Ranked lists come from K=0 items (the
// RankedCandidates contract), top-k prefixes from K=10 items, in one
// interleaved batch so scratch reuse across differently-shaped queries is
// exercised too.
func TestRelaxBatchMatchesGolden(t *testing.T) {
	data, err := os.ReadFile("testdata/relax_golden.json")
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var want []GoldenSummary
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing golden file: %v", err)
	}

	sys := sharedSystem(t)
	queries := eval.SelectQueries(sys.Med, sys.Oracle, len(want))

	// Two batch items per golden query: full ranked list, then the k=10
	// instance-bounded prefix — exactly the two views a GoldenEntry pins.
	batch := make([]core.BatchQuery, 0, 2*len(queries))
	for _, q := range queries {
		batch = append(batch,
			core.BatchQuery{Concept: q.Concept, UseConcept: true, Ctx: q.Ctx, K: 0},
			core.BatchQuery{Concept: q.Concept, UseConcept: true, Ctx: q.Ctx, K: 10},
		)
	}
	results, errs := sys.Engine.Relaxer().RelaxBatchContext(context.Background(), batch)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("batch item %d: %v", i, err)
		}
	}

	entries := make([]GoldenEntry, 0, len(queries))
	for i, q := range queries {
		e := GoldenEntry{Term: q.Term, Concept: int64(q.Concept)}
		if q.Ctx != nil {
			e.Context = q.Ctx.String()
		}
		e.Ranked = goldenResults(results[2*i])
		e.TopK = goldenResults(results[2*i+1])
		entries = append(entries, e)
	}
	got, err := Summarize(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d summaries, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Term != w.Term || g.Concept != w.Concept || g.Context != w.Context {
			t.Errorf("query %d: identity mismatch: got (%q, %d, %q), want (%q, %d, %q)",
				i, g.Term, g.Concept, g.Context, w.Term, w.Concept, w.Context)
			continue
		}
		if g.RankedLen != w.RankedLen || g.TopKLen != w.TopKLen {
			t.Errorf("query %d (%q): result counts changed: ranked %d->%d, topk %d->%d",
				i, w.Term, w.RankedLen, g.RankedLen, w.TopKLen, g.TopKLen)
		}
		if g.Hash != w.Hash {
			t.Errorf("query %d (%q): batch output diverged from the pinned sequential implementation", i, w.Term)
		}
	}
}
