package medrelax

// Offline-phase performance benchmarks: Algorithm 1 ingestion serial vs
// parallel across world sizes, and bundle loading in the JSON v1 vs binary
// v2 persistence formats. cmd/ingestbench runs the same workloads and
// records the numbers in BENCH_ingest.json; `go test -bench=BenchmarkIngest`
// reproduces them.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"medrelax/internal/core"
	"medrelax/internal/corpus"
	"medrelax/internal/eks"
	"medrelax/internal/match"
	"medrelax/internal/medkb"
	"medrelax/internal/persist"
	"medrelax/internal/synthkb"
)

// benchWorld regenerates a deterministic synthkb+medkb world grown to the
// target EKS size. Ingestion mutates the graph (shortcut edges, freeze), so
// every measured iteration needs a fresh world.
func benchWorld(tb testing.TB, target int) (*medkb.MED, *eks.Graph, *corpus.Corpus) {
	tb.Helper()
	cpp := 1
	if target > 2000 {
		cpp = 20
	}
	w, err := synthkb.Generate(synthkb.Config{Seed: 42, ConditionsPerPair: cpp})
	if err != nil {
		tb.Fatal(err)
	}
	med, err := medkb.Generate(w, medkb.Config{Seed: 43, Drugs: 40})
	if err != nil {
		tb.Fatal(err)
	}
	corp := medkb.BuildCorpus(w, med, medkb.CorpusConfig{Seed: 44})
	g := w.Graph
	next := eks.ConceptID(1)
	for _, id := range g.ConceptIDs() {
		if id >= next {
			next = id + 1
		}
	}
	for i := 0; g.Len() < target; i++ {
		parent := w.Findings[i%len(w.Findings)]
		if err := g.AddConcept(eks.Concept{ID: next, Name: fmt.Sprintf("variant %d of %d", i, parent)}); err != nil {
			tb.Fatal(err)
		}
		if err := g.AddSubsumption(next, parent); err != nil {
			tb.Fatal(err)
		}
		next++
	}
	return med, g, corp
}

// BenchmarkIngest measures the full offline phase (Algorithm 1: mapping,
// frequency table, shortcut customization, dense-index freeze) serial vs
// parallel. World regeneration runs with the timer stopped.
func BenchmarkIngest(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		for _, mode := range []struct {
			name    string
			workers int
		}{{"serial", 1}, {"parallel", 0}} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					med, g, corp := benchWorld(b, n)
					mapper := match.NewExact(g)
					b.StartTimer()
					if _, err := core.Ingest(med.Ontology, med.Store, g, corp, mapper, core.IngestOptions{Parallelism: mode.workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBundleLoad measures persist.Load on the same ingestion encoded
// as JSON v1 and binary v2 — decode plus full restore (ontology fixpoint,
// graph rebuild, frequency table).
func BenchmarkBundleLoad(b *testing.B) {
	med, g, corp := benchWorld(b, 10_000)
	ing, err := core.Ingest(med.Ontology, med.Store, g, corp, match.NewExact(g), core.IngestOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var v1, v2 bytes.Buffer
	if err := persist.Save(&v1, ing); err != nil {
		b.Fatal(err)
	}
	if err := persist.SaveBinary(&v2, ing); err != nil {
		b.Fatal(err)
	}
	for _, enc := range []struct {
		name string
		data []byte
	}{{"v1-json", v1.Bytes()}, {"v2-binary", v2.Bytes()}} {
		b.Run(enc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(enc.data)))
			for i := 0; i < b.N; i++ {
				if _, err := persist.Load(bytes.NewReader(enc.data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColdStart measures the from-file serving-start path: LoadFile on
// a v2 binary bundle (decode + full restore onto the heap) against the v4
// flat bundle (header/CRC validation over an mmap, columns served in
// place). The gap between the two sub-benchmarks — wall time and
// allocs/op — is what CI gates on; cmd/ingestbench records the full-size
// numbers in BENCH_ingest.json.
func BenchmarkColdStart(b *testing.B) {
	med, g, corp := benchWorld(b, 10_000)
	ing, err := core.Ingest(med.Ontology, med.Store, g, corp, match.NewExact(g), core.IngestOptions{})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	paths := map[persist.Format]string{
		persist.FormatBinary: filepath.Join(dir, "world.bundle"),
		persist.FormatFlat:   filepath.Join(dir, "world.flat"),
	}
	for format, path := range paths {
		if err := persist.SaveFileAtomic(path, ing, format); err != nil {
			b.Fatal(err)
		}
	}
	for _, enc := range []struct {
		name   string
		format persist.Format
	}{{"v2-file", persist.FormatBinary}, {"flat-file", persist.FormatFlat}} {
		b.Run(enc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				restored, err := persist.LoadFile(paths[enc.format])
				if err != nil {
					b.Fatal(err)
				}
				if restored.Graph.Len() != ing.Graph.Len() {
					b.Fatalf("restored %d concepts, want %d", restored.Graph.Len(), ing.Graph.Len())
				}
			}
		})
	}
}
