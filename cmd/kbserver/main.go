// Command kbserver exposes the query relaxation system over HTTP with a
// small JSON API, the way the paper's method was deployed as a cloud
// service interacting with the conversational frontend.
//
// Endpoints:
//
//	GET  /healthz                           liveness probe
//	GET  /stats                             world and ingestion statistics
//	GET  /relax?term=X&context=C&k=N        ranked relaxed results
//	POST /chat {"session":"s1","text":"…"}  stateful conversation turn
//
// Usage:
//
//	kbserver -addr :8080 -seed 42
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"medrelax"
	"medrelax/internal/core"
	"medrelax/internal/dialog"
	"medrelax/internal/match"
	"medrelax/internal/persist"
	"medrelax/internal/server"
)

// systemBackend adapts the medrelax facade to the server's Backend.
type systemBackend struct {
	sys *medrelax.System
}

func (b *systemBackend) Relax(term, ctx string, k int) ([]server.RelaxResult, error) {
	results, err := b.sys.Relax(term, ctx, k)
	if err != nil {
		return nil, err
	}
	out := make([]server.RelaxResult, 0, len(results))
	for _, r := range results {
		rr := server.RelaxResult{Concept: r.ConceptName, Score: r.Score, Hops: r.Hops}
		for _, inst := range r.Instances {
			rr.Instances = append(rr.Instances, inst.Name)
		}
		out = append(out, rr)
	}
	return out, nil
}

func (b *systemBackend) NewConversation() (*dialog.Conversation, error) {
	return b.sys.NewConversation(true)
}

func (b *systemBackend) Stats() map[string]any {
	return map[string]any{
		"eksConcepts":      b.sys.World.Graph.Len(),
		"eksEdges":         b.sys.World.Graph.EdgeCount(),
		"shortcutsAdded":   b.sys.Ingestion.ShortcutsAdded,
		"kbInstances":      b.sys.Med.Store.Len(),
		"flaggedConcepts":  len(b.sys.Ingestion.Flagged),
		"contexts":         len(b.sys.Ingestion.Contexts),
		"corpusTokens":     b.sys.Corpus.TokenCount(),
		"embeddingVocab":   b.sys.MedModel.VocabSize(),
		"ontologyConcepts": b.sys.Med.Ontology.ConceptCount(),
	}
}

// loadBackend serves relaxation from a saved ingestion bundle: no world
// regeneration, no embedding training — the cold-start path the bundle
// format exists for. /chat is unavailable because conversations need the
// full synthetic world, which the bundle deliberately omits.
func loadBackend(path string) (server.Backend, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	loadStart := time.Now()
	ing, err := persist.Load(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	loadDur := time.Since(loadStart)
	freezeStart := time.Now()
	ing.Graph.Freeze()
	log.Printf("bundle loaded: %d EKS concepts, %d instances (decode+restore %s, freeze %s)",
		ing.Graph.Len(), ing.Store.Len(),
		loadDur.Round(time.Millisecond), time.Since(freezeStart).Round(time.Millisecond))
	mapper := match.NewCombined(match.NewExact(ing.Graph), match.NewEdit(ing.Graph, 0), match.NewLookupService(ing.Graph))
	sim := core.NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	relaxer := core.NewRelaxer(ing, sim, mapper, core.RelaxOptions{Radius: 3, DynamicRadius: true})
	return &server.RelaxerBackend{Relaxer: relaxer, Ing: ing}, nil
}

func main() {
	var (
		addr = flag.String("addr", ":8080", "listen address")
		seed = flag.Int64("seed", 42, "generation seed")
		load = flag.String("load", "", "serve from a saved ingestion bundle instead of rebuilding the world (disables /chat)")
	)
	flag.Parse()

	var backend server.Backend
	if *load != "" {
		b, err := loadBackend(*load)
		if err != nil {
			log.Fatalf("kbserver: loading bundle: %v", err)
		}
		backend = b
	} else {
		cfg := medrelax.DefaultConfig()
		cfg.Seed = *seed
		log.Print("building synthetic world and running ingestion ...")
		buildStart := time.Now()
		sys, err := medrelax.Build(cfg)
		if err != nil {
			log.Fatalf("kbserver: %v", err)
		}
		tm := sys.Timings
		log.Printf("world ready in %s (worldgen %s, embeddings %s, ingest %s)",
			time.Since(buildStart).Round(time.Millisecond), tm.WorldGen.Round(time.Millisecond),
			tm.Embeddings.Round(time.Millisecond), tm.Ingest.Round(time.Millisecond))
		backend = &systemBackend{sys: sys}
	}
	srv := server.New(backend)
	log.Printf("kbserver listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
