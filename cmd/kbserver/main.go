// Command kbserver exposes the query relaxation system over HTTP with a
// small JSON API, the way the paper's method was deployed as a cloud
// service interacting with the conversational frontend. The serving layer
// (internal/serving) adds a result cache, admission control, hot bundle
// reload, and Prometheus-format metrics; the engine layer
// (internal/engine) supplies the immutable snapshots being served.
//
// Endpoints:
//
//	GET  /healthz                           liveness probe
//	GET  /stats                             world, ingestion, and serving statistics
//	GET  /relax?term=X&context=C&k=N        ranked relaxed results (cached)
//	GET  /relax?...&explain=true            ... with per-result relaxation paths
//	                                        (subsumer chain, edge directions and
//	                                        distances, Eq. 4 weight, source EKS);
//	                                        cached under a separate key so plain
//	                                        responses stay byte-identical
//	POST /relax/batch {"queries":[...]}     many relax queries in one request
//	                                        (?explain=true applies to all items)
//	GET  /terms?n=N                         sample of relaxable query terms
//	POST /chat {"session":"s1","text":"…"}  stateful conversation turn
//	GET  /metrics                           Prometheus text exposition (all tenants)
//	POST /admin/reload                      reload this tenant's bundle and swap atomically
//
// Multi-tenant serving: repeat -bundle name=path to serve several bundles
// from one process. Each tenant gets its own cache partition, reload, and
// tenant-labelled metrics; route with /t/{name}/... or the
// X-Medrelax-Tenant header (bare paths hit the first-listed tenant).
//
// SIGHUP reloads every reloadable tenant; SIGINT/SIGTERM drain in-flight
// requests and exit.
//
// Usage:
//
//	kbserver -addr :8080 -seed 42
//	kbserver -addr :8080 -load bundle.bin
//	kbserver -addr :8080 -bundle alpha=a.bin -bundle beta=b.bin
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"medrelax"
	"medrelax/internal/engine"
	"medrelax/internal/fault"
	"medrelax/internal/server"
	"medrelax/internal/serving"
	"medrelax/internal/serving/metrics"
	"medrelax/internal/trace"
)

// tenantSpec is one -bundle name=path mount.
type tenantSpec struct {
	name, path string
}

func main() {
	var bundles []tenantSpec
	var (
		addr = flag.String("addr", ":8080", "listen address")
		seed = flag.Int64("seed", 42, "generation seed")
		load = flag.String("load", "", "serve from a saved ingestion bundle instead of rebuilding the world (disables /chat, enables /admin/reload)")

		cacheSize  = flag.Int("cache-size", 16384, "result cache capacity in entries, per tenant (0 disables caching)")
		cacheTTL   = flag.Duration("cache-ttl", 5*time.Minute, "result cache entry TTL (0: LRU/reload eviction only)")
		cacheStale = flag.Duration("cache-stale", time.Minute, "serve entries expired less than this long ago when recomputation fails (0: disabled)")
		maxConc    = flag.Int("max-concurrent", 256, "max concurrently admitted /relax+/chat requests, per tenant; excess sheds with 429 (0: unlimited)")
		relaxTO    = flag.Duration("relax-timeout", 2*time.Second, "per-request /relax deadline (0: none)")
		chatTO     = flag.Duration("chat-timeout", 5*time.Second, "per-request /chat deadline (0: none)")
		chatRPS    = flag.Float64("chat-rps", 200, "global /chat rate limit in requests/second (0: unlimited)")
		slowQ      = flag.Duration("slow-query", 500*time.Millisecond, "slow-query log threshold (0: disabled)")
		traceEvery = flag.Int("trace-sample", 128, "trace 1 in N requests arriving without a traceparent header (0 disables self-sampling; explicit sampled traceparent headers are always honored)")
		faults     = flag.String("faults", "", "fault-injection spec (see internal/fault); overrides $"+fault.EnvVar)
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this separate address, e.g. 127.0.0.1:6060 (empty: disabled)")
	)
	flag.Func("bundle", "name=path: serve this bundle as tenant NAME (repeatable; first is the default tenant)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		bundles = append(bundles, tenantSpec{name: name, path: path})
		return nil
	})
	flag.Parse()

	// Fault injection: explicit flag wins, otherwise the environment. Off
	// (the default) costs one atomic load per armed call site.
	if *faults != "" {
		reg, err := fault.Parse(*faults)
		if err != nil {
			log.Fatalf("kbserver: -faults: %v", err)
		}
		fault.SetDefault(reg)
	} else if _, err := fault.FromEnv(); err != nil {
		log.Fatalf("kbserver: $%s: %v", fault.EnvVar, err)
	}
	if armed := fault.Default().Names(); len(armed) > 0 {
		log.Printf("kbserver: FAULT INJECTION ARMED at sites %v", armed)
	}
	if len(bundles) > 0 && *load != "" {
		log.Fatal("kbserver: -load and -bundle are mutually exclusive; use -bundle default=path")
	}

	opts := serving.DefaultOptions()
	opts.CacheCapacity = *cacheSize
	opts.CacheTTL = *cacheTTL
	opts.CacheStaleWindow = *cacheStale
	opts.MaxConcurrent = *maxConc
	opts.RelaxTimeout = *relaxTO
	opts.ChatTimeout = *chatTO
	opts.ChatRPS = *chatRPS
	opts.SlowQuery = *slowQ
	// One tracer (and one /debug/traces ring) per process; tenants are
	// distinguished by the tenant tag on their spans.
	opts.Tracer = trace.NewTracer("kbserver", *traceEvery, trace.NewRecorder(256, 16))

	// Every deployment shape mounts through the tenant router; the
	// single-tenant shapes just register one unlabelled tenant, so bare
	// paths and series names look exactly like they always did.
	tenants := serving.NewTenantServer()
	switch {
	case len(bundles) > 0:
		// Multi-tenant: one engine registry slot, cache partition, and
		// tenant-labelled series per bundle, over one shared metrics
		// registry so a single scrape covers the fleet.
		registry := engine.NewRegistry()
		shared := metrics.NewRegistry()
		for _, spec := range bundles {
			snap, err := engine.LoadSnapshot(spec.path)
			if err != nil {
				log.Fatalf("kbserver: tenant %q: %v", spec.name, err)
			}
			handle, err := registry.Add(spec.name, spec.path, snap)
			if err != nil {
				log.Fatalf("kbserver: %v", err)
			}
			o := opts
			o.Metrics = shared
			o.BaseLabels = metrics.Label("tenant", spec.name)
			o.Tenant = spec.name
			o.Loader = func() (server.Backend, error) {
				fresh, err := handle.Reload()
				if err != nil {
					return nil, err
				}
				return fresh, nil
			}
			eng := serving.NewEngine(snap, o)
			tenants.Add(spec.name, eng, server.New(eng).Handler())
			log.Printf("kbserver: tenant %q serving %s", spec.name, spec.path)
		}
	case *load != "":
		snap, err := engine.LoadSnapshot(*load)
		if err != nil {
			log.Fatalf("kbserver: loading bundle: %v", err)
		}
		bundle := *load
		opts.Loader = func() (server.Backend, error) {
			fresh, err := engine.LoadSnapshot(bundle)
			if err != nil {
				return nil, err
			}
			return fresh, nil
		}
		eng := serving.NewEngine(snap, opts)
		tenants.Add("default", eng, server.New(eng).Handler())
	default:
		cfg := medrelax.DefaultConfig()
		cfg.Seed = *seed
		log.Print("building synthetic world and running ingestion ...")
		buildStart := time.Now()
		sys, err := medrelax.Build(cfg)
		if err != nil {
			log.Fatalf("kbserver: %v", err)
		}
		tm := sys.Timings
		log.Printf("world ready in %s (worldgen %s, embeddings %s, ingest %s)",
			time.Since(buildStart).Round(time.Millisecond), tm.WorldGen.Round(time.Millisecond),
			tm.Embeddings.Round(time.Millisecond), tm.Ingest.Round(time.Millisecond))
		eng := serving.NewEngine(sys.Engine, opts)
		tenants.Add("default", eng, server.New(eng).Handler())
	}

	// Profiling stays off the API address: pprof binds its own listener,
	// only when asked, so the public surface never exposes the debug
	// endpoints by accident.
	if *pprofAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			log.Printf("kbserver: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("kbserver: pprof server: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           tenants.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// SIGHUP reloads every reloadable tenant in place; SIGINT/SIGTERM
	// drain and exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			for _, name := range tenants.Names() {
				eng, _ := tenants.Engine(name)
				log.Printf("kbserver: SIGHUP — reloading tenant %q", name)
				if err := eng.Reload(); err != nil {
					log.Printf("kbserver: tenant %q reload failed, keeping current bundle: %v", name, err)
				}
			}
		}
	}()

	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-shutdown
		log.Printf("kbserver: %s — draining in-flight requests", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("kbserver: shutdown: %v", err)
		}
	}()

	log.Printf("kbserver listening on %s (tenants: %s)", *addr, strings.Join(tenants.Names(), ", "))
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("kbserver: %v", err)
	}
	<-done
	log.Print("kbserver: shutdown complete")
}
