// Command kbserver exposes the query relaxation system over HTTP with a
// small JSON API, the way the paper's method was deployed as a cloud
// service interacting with the conversational frontend. The serving layer
// (internal/serving) adds a result cache, admission control, hot bundle
// reload, and Prometheus-format metrics.
//
// Endpoints:
//
//	GET  /healthz                           liveness probe
//	GET  /stats                             world, ingestion, and serving statistics
//	GET  /relax?term=X&context=C&k=N        ranked relaxed results (cached)
//	GET  /terms?n=N                         sample of relaxable query terms
//	POST /chat {"session":"s1","text":"…"}  stateful conversation turn
//	GET  /metrics                           Prometheus text exposition
//	POST /admin/reload                      reload the -load bundle and swap atomically
//
// SIGHUP also triggers a bundle reload; SIGINT/SIGTERM drain in-flight
// requests and exit.
//
// Usage:
//
//	kbserver -addr :8080 -seed 42
//	kbserver -addr :8080 -load bundle.bin
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"syscall"
	"time"

	"medrelax"
	"medrelax/internal/boot"
	"medrelax/internal/dialog"
	"medrelax/internal/eks"
	"medrelax/internal/fault"
	"medrelax/internal/server"
	"medrelax/internal/serving"
)

// systemBackend adapts the medrelax facade to the server's Backend.
type systemBackend struct {
	sys *medrelax.System
}

func (b *systemBackend) Relax(ctx context.Context, term, qctx string, k int) ([]server.RelaxResult, error) {
	results, err := b.sys.RelaxContext(ctx, term, qctx, k)
	if err != nil {
		return nil, err
	}
	out := make([]server.RelaxResult, 0, len(results))
	for _, r := range results {
		rr := server.RelaxResult{Concept: r.ConceptName, Score: r.Score, Hops: r.Hops}
		for _, inst := range r.Instances {
			rr.Instances = append(rr.Instances, inst.Name)
		}
		out = append(out, rr)
	}
	return out, nil
}

func (b *systemBackend) NewConversation() (*dialog.Conversation, error) {
	return b.sys.NewConversation(true)
}

// Terms implements server.TermSampler over the flagged concepts.
func (b *systemBackend) Terms(n int) []string {
	ids := make([]eks.ConceptID, 0, len(b.sys.Ingestion.Flagged))
	for id := range b.sys.Ingestion.Flagged {
		ids = append(ids, id)
	}
	// Deterministic order so repeated loadgen runs see the same mix.
	slices.Sort(ids)
	if n < len(ids) {
		ids = ids[:n]
	}
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if c, ok := b.sys.World.Graph.Concept(id); ok {
			out = append(out, c.Name)
		}
	}
	return out
}

func (b *systemBackend) Stats() map[string]any {
	return map[string]any{
		"eksConcepts":      b.sys.World.Graph.Len(),
		"eksEdges":         b.sys.World.Graph.EdgeCount(),
		"shortcutsAdded":   b.sys.Ingestion.ShortcutsAdded,
		"kbInstances":      b.sys.Med.Store.Len(),
		"flaggedConcepts":  len(b.sys.Ingestion.Flagged),
		"contexts":         len(b.sys.Ingestion.Contexts),
		"corpusTokens":     b.sys.Corpus.TokenCount(),
		"embeddingVocab":   b.sys.MedModel.VocabSize(),
		"ontologyConcepts": b.sys.Med.Ontology.ConceptCount(),
	}
}

func main() {
	var (
		addr = flag.String("addr", ":8080", "listen address")
		seed = flag.Int64("seed", 42, "generation seed")
		load = flag.String("load", "", "serve from a saved ingestion bundle instead of rebuilding the world (disables /chat, enables /admin/reload)")

		cacheSize  = flag.Int("cache-size", 16384, "result cache capacity in entries (0 disables caching)")
		cacheTTL   = flag.Duration("cache-ttl", 5*time.Minute, "result cache entry TTL (0: LRU/reload eviction only)")
		cacheStale = flag.Duration("cache-stale", time.Minute, "serve entries expired less than this long ago when recomputation fails (0: disabled)")
		maxConc    = flag.Int("max-concurrent", 256, "max concurrently admitted /relax+/chat requests; excess sheds with 429 (0: unlimited)")
		relaxTO    = flag.Duration("relax-timeout", 2*time.Second, "per-request /relax deadline (0: none)")
		chatTO     = flag.Duration("chat-timeout", 5*time.Second, "per-request /chat deadline (0: none)")
		chatRPS    = flag.Float64("chat-rps", 200, "global /chat rate limit in requests/second (0: unlimited)")
		slowQ      = flag.Duration("slow-query", 500*time.Millisecond, "slow-query log threshold (0: disabled)")
		faults     = flag.String("faults", "", "fault-injection spec (see internal/fault); overrides $"+fault.EnvVar)
	)
	flag.Parse()

	// Fault injection: explicit flag wins, otherwise the environment. Off
	// (the default) costs one atomic load per armed call site.
	if *faults != "" {
		reg, err := fault.Parse(*faults)
		if err != nil {
			log.Fatalf("kbserver: -faults: %v", err)
		}
		fault.SetDefault(reg)
	} else if _, err := fault.FromEnv(); err != nil {
		log.Fatalf("kbserver: $%s: %v", fault.EnvVar, err)
	}
	if armed := fault.Default().Names(); len(armed) > 0 {
		log.Printf("kbserver: FAULT INJECTION ARMED at sites %v", armed)
	}

	var backend server.Backend
	if *load != "" {
		b, err := boot.LoadBackend(*load)
		if err != nil {
			log.Fatalf("kbserver: loading bundle: %v", err)
		}
		backend = b
	} else {
		cfg := medrelax.DefaultConfig()
		cfg.Seed = *seed
		log.Print("building synthetic world and running ingestion ...")
		buildStart := time.Now()
		sys, err := medrelax.Build(cfg)
		if err != nil {
			log.Fatalf("kbserver: %v", err)
		}
		tm := sys.Timings
		log.Printf("world ready in %s (worldgen %s, embeddings %s, ingest %s)",
			time.Since(buildStart).Round(time.Millisecond), tm.WorldGen.Round(time.Millisecond),
			tm.Embeddings.Round(time.Millisecond), tm.Ingest.Round(time.Millisecond))
		backend = &systemBackend{sys: sys}
	}

	opts := serving.DefaultOptions()
	opts.CacheCapacity = *cacheSize
	opts.CacheTTL = *cacheTTL
	opts.CacheStaleWindow = *cacheStale
	opts.MaxConcurrent = *maxConc
	opts.RelaxTimeout = *relaxTO
	opts.ChatTimeout = *chatTO
	opts.ChatRPS = *chatRPS
	opts.SlowQuery = *slowQ
	if *load != "" {
		bundle := *load
		opts.Loader = func() (server.Backend, error) { return boot.LoadBackend(bundle) }
	}
	engine := serving.NewEngine(backend, opts)
	api := server.New(engine)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           engine.Handler(api.Handler()),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// SIGHUP reloads the bundle in place; SIGINT/SIGTERM drain and exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			log.Print("kbserver: SIGHUP — reloading bundle")
			if err := engine.Reload(); err != nil {
				log.Printf("kbserver: reload failed, keeping current bundle: %v", err)
			}
		}
	}()

	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-shutdown
		log.Printf("kbserver: %s — draining in-flight requests", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("kbserver: shutdown: %v", err)
		}
	}()

	log.Printf("kbserver listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("kbserver: %v", err)
	}
	<-done
	log.Print("kbserver: shutdown complete")
}
