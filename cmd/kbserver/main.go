// Command kbserver exposes the query relaxation system over HTTP with a
// small JSON API, the way the paper's method was deployed as a cloud
// service interacting with the conversational frontend.
//
// Endpoints:
//
//	GET  /healthz                           liveness probe
//	GET  /stats                             world and ingestion statistics
//	GET  /relax?term=X&context=C&k=N        ranked relaxed results
//	POST /chat {"session":"s1","text":"…"}  stateful conversation turn
//
// Usage:
//
//	kbserver -addr :8080 -seed 42
package main

import (
	"flag"
	"log"
	"net/http"

	"medrelax"
	"medrelax/internal/dialog"
	"medrelax/internal/server"
)

// systemBackend adapts the medrelax facade to the server's Backend.
type systemBackend struct {
	sys *medrelax.System
}

func (b *systemBackend) Relax(term, ctx string, k int) ([]server.RelaxResult, error) {
	results, err := b.sys.Relax(term, ctx, k)
	if err != nil {
		return nil, err
	}
	out := make([]server.RelaxResult, 0, len(results))
	for _, r := range results {
		rr := server.RelaxResult{Concept: r.ConceptName, Score: r.Score, Hops: r.Hops}
		for _, inst := range r.Instances {
			rr.Instances = append(rr.Instances, inst.Name)
		}
		out = append(out, rr)
	}
	return out, nil
}

func (b *systemBackend) NewConversation() (*dialog.Conversation, error) {
	return b.sys.NewConversation(true)
}

func (b *systemBackend) Stats() map[string]any {
	return map[string]any{
		"eksConcepts":      b.sys.World.Graph.Len(),
		"eksEdges":         b.sys.World.Graph.EdgeCount(),
		"shortcutsAdded":   b.sys.Ingestion.ShortcutsAdded,
		"kbInstances":      b.sys.Med.Store.Len(),
		"flaggedConcepts":  len(b.sys.Ingestion.Flagged),
		"contexts":         len(b.sys.Ingestion.Contexts),
		"corpusTokens":     b.sys.Corpus.TokenCount(),
		"embeddingVocab":   b.sys.MedModel.VocabSize(),
		"ontologyConcepts": b.sys.Med.Ontology.ConceptCount(),
	}
}

func main() {
	var (
		addr = flag.String("addr", ":8080", "listen address")
		seed = flag.Int64("seed", 42, "generation seed")
	)
	flag.Parse()

	cfg := medrelax.DefaultConfig()
	cfg.Seed = *seed
	log.Print("building synthetic world and running ingestion ...")
	sys, err := medrelax.Build(cfg)
	if err != nil {
		log.Fatalf("kbserver: %v", err)
	}
	srv := server.New(&systemBackend{sys: sys})
	log.Printf("kbserver listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
