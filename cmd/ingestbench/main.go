// Command ingestbench measures the offline-phase performance — Algorithm 1
// ingestion serial vs parallel across world sizes, and bundle loading in
// the JSON v1 vs binary v2 persistence formats — and records the numbers
// as JSON, so optimization work has a checked-in before/after record.
//
// The parallel ingest numbers are bounded by core count: on a single-core
// machine serial and parallel coincide (modulo goroutine overhead), and the
// v2 load and size wins are the only machine-independent results.
//
//	go run ./cmd/ingestbench -out BENCH_ingest.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"medrelax/internal/core"
	"medrelax/internal/corpus"
	"medrelax/internal/eks"
	"medrelax/internal/match"
	"medrelax/internal/medkb"
	"medrelax/internal/persist"
	"medrelax/internal/synthkb"
)

// Measurement is one benchmark row.
type Measurement struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"nsPerOp"`
	AllocsOp int64   `json:"allocsPerOp"`
	BytesOp  int64   `json:"bytesPerOp"`
	Ops      int     `json:"ops"`
}

// Report is the BENCH_ingest.json document.
type Report struct {
	Date         string        `json:"date"`
	GOOS         string        `json:"goos"`
	GOARCH       string        `json:"goarch"`
	CPUs         int           `json:"cpus"`
	GoMaxProcs   int           `json:"gomaxprocs"`
	GoVersion    string        `json:"goVersion"`
	Measurements []Measurement `json:"measurements"`
	// IngestSpeedup maps world size to serial ns/op over parallel ns/op.
	// Bounded by GOMAXPROCS; ~1.0 on a single-core machine.
	IngestSpeedup map[string]float64 `json:"ingestSpeedup"`
	// LoadSpeedupV2 is v1 load ns/op over v2 load ns/op at the largest
	// measured world: how much faster the binary format restores.
	LoadSpeedupV2 float64 `json:"loadSpeedupV2"`
	// SizeRatioV1V2 is v1 bytes over v2 bytes for the same ingestion.
	SizeRatioV1V2 float64 `json:"sizeRatioV1V2"`
	// BundleBytesV1, BundleBytesV2 and BundleBytesFlat are the encoded
	// sizes themselves.
	BundleBytesV1   int `json:"bundleBytesV1"`
	BundleBytesV2   int `json:"bundleBytesV2"`
	BundleBytesFlat int `json:"bundleBytesFlat"`
	// ColdStartSpeedupFlat is v2 file-load ns/op over flat (v4) open
	// ns/op at the largest measured world: the zero-copy cold-start win.
	ColdStartSpeedupFlat float64 `json:"coldStartSpeedupFlat"`
	// AllocRatioFlatV2 is flat open allocs/op over v2 load allocs/op —
	// near zero when the flat path materializes no per-record structs.
	AllocRatioFlatV2 float64 `json:"allocRatioFlatV2"`
	// RSSDeltaV2KB / RSSDeltaFlatKB are the resident-set growth (VmRSS)
	// of holding one loaded snapshot, v2-heap vs flat-mapped. Linux only;
	// 0 where /proc is unavailable. Mapped pages are file-backed and
	// shared, so the flat figure shrinks further with tenant count (see
	// loadgen's multi-tenant density phase).
	RSSDeltaV2KB   int64 `json:"rssDeltaV2KB"`
	RSSDeltaFlatKB int64 `json:"rssDeltaFlatKB"`
}

func row(name string, r testing.BenchmarkResult) Measurement {
	return Measurement{
		Name:     name,
		NsPerOp:  float64(r.NsPerOp()),
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
		Ops:      r.N,
	}
}

// buildWorld regenerates a deterministic synthkb+medkb world grown to the
// target EKS size. Ingestion mutates the graph, so every measured run needs
// a fresh world.
func buildWorld(target int) (*medkb.MED, *eks.Graph, *corpus.Corpus, error) {
	cpp := 1
	if target > 2000 {
		cpp = 20
	}
	w, err := synthkb.Generate(synthkb.Config{Seed: 42, ConditionsPerPair: cpp})
	if err != nil {
		return nil, nil, nil, err
	}
	med, err := medkb.Generate(w, medkb.Config{Seed: 43, Drugs: 40})
	if err != nil {
		return nil, nil, nil, err
	}
	corp := medkb.BuildCorpus(w, med, medkb.CorpusConfig{Seed: 44})
	g := w.Graph
	next := eks.ConceptID(1)
	for _, id := range g.ConceptIDs() {
		if id >= next {
			next = id + 1
		}
	}
	for i := 0; g.Len() < target; i++ {
		parent := w.Findings[i%len(w.Findings)]
		if err := g.AddConcept(eks.Concept{ID: next, Name: fmt.Sprintf("variant %d of %d", i, parent)}); err != nil {
			return nil, nil, nil, err
		}
		if err := g.AddSubsumption(next, parent); err != nil {
			return nil, nil, nil, err
		}
		next++
	}
	return med, g, corp, nil
}

func benchIngest(n, workers int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			med, g, corp, err := buildWorld(n)
			if err != nil {
				b.Fatal(err)
			}
			mapper := match.NewExact(g)
			b.StartTimer()
			if _, err := core.Ingest(med.Ontology, med.Store, g, corp, mapper, core.IngestOptions{Parallelism: workers}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func main() {
	out := flag.String("out", "BENCH_ingest.json", "output JSON path")
	table := flag.String("table", "", "also write a markdown summary table to this path")
	large := flag.Bool("large", true, "include the 10^5-concept world")
	flag.Parse()

	rep := Report{
		Date:          time.Now().UTC().Format("2006-01-02"),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		GoVersion:     runtime.Version(),
		IngestSpeedup: map[string]float64{},
	}

	sizes := []int{1_000, 10_000}
	if *large {
		sizes = append(sizes, 100_000)
	}
	for _, n := range sizes {
		log.Printf("measuring serial ingest at %d concepts...", n)
		serial := benchIngest(n, 1)
		rep.Measurements = append(rep.Measurements, row(fmt.Sprintf("ingest_serial_n%d", n), serial))
		log.Printf("measuring parallel ingest at %d concepts...", n)
		parallel := benchIngest(n, 0)
		rep.Measurements = append(rep.Measurements, row(fmt.Sprintf("ingest_parallel_n%d", n), parallel))
		if p := parallel.NsPerOp(); p > 0 {
			rep.IngestSpeedup[fmt.Sprintf("n%d", n)] = float64(serial.NsPerOp()) / float64(p)
		}
	}

	loadN := sizes[len(sizes)-1]
	log.Printf("building the %d-concept ingestion for the load benchmark...", loadN)
	med, g, corp, err := buildWorld(loadN)
	if err != nil {
		log.Fatal(err)
	}
	ing, err := core.Ingest(med.Ontology, med.Store, g, corp, match.NewExact(g), core.IngestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var v1, v2 bytes.Buffer
	if err := persist.Save(&v1, ing); err != nil {
		log.Fatal(err)
	}
	if err := persist.SaveBinary(&v2, ing); err != nil {
		log.Fatal(err)
	}
	rep.BundleBytesV1 = v1.Len()
	rep.BundleBytesV2 = v2.Len()
	if v2.Len() > 0 {
		rep.SizeRatioV1V2 = float64(v1.Len()) / float64(v2.Len())
	}

	var loadNs [2]float64
	for i, enc := range []struct {
		name string
		data []byte
	}{{"v1_json", v1.Bytes()}, {"v2_binary", v2.Bytes()}} {
		log.Printf("measuring bundle load (%s, %d bytes)...", enc.name, len(enc.data))
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for j := 0; j < b.N; j++ {
				if _, err := persist.Load(bytes.NewReader(enc.data)); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Measurements = append(rep.Measurements, row(fmt.Sprintf("bundle_load_%s_n%d", enc.name, loadN), r))
		loadNs[i] = float64(r.NsPerOp())
	}
	if loadNs[1] > 0 {
		rep.LoadSpeedupV2 = loadNs[0] / loadNs[1]
	}

	// Cold start from disk: the v2 binary decode against the zero-copy
	// flat (v4) open, both through the LoadFile dispatch production uses.
	dir, err := os.MkdirTemp("", "ingestbench-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	v2Path := dir + "/bundle.bin"
	flatPath := dir + "/bundle.flat"
	if err := persist.SaveFileAtomic(v2Path, ing, persist.FormatBinary); err != nil {
		log.Fatal(err)
	}
	if err := persist.SaveFileAtomic(flatPath, ing, persist.FormatFlat); err != nil {
		log.Fatal(err)
	}
	if st, err := os.Stat(flatPath); err == nil {
		rep.BundleBytesFlat = int(st.Size())
	}
	var fileNs, fileAllocs [2]float64
	for i, enc := range []struct {
		name, path string
	}{{"v2_file", v2Path}, {"flat_file", flatPath}} {
		log.Printf("measuring cold start (%s)...", enc.name)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for j := 0; j < b.N; j++ {
				if _, err := persist.LoadFile(enc.path); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Measurements = append(rep.Measurements, row(fmt.Sprintf("cold_start_%s_n%d", enc.name, loadN), r))
		fileNs[i] = float64(r.NsPerOp())
		fileAllocs[i] = float64(r.AllocsPerOp())
	}
	if fileNs[1] > 0 {
		rep.ColdStartSpeedupFlat = fileNs[0] / fileNs[1]
	}
	if fileAllocs[0] > 0 {
		rep.AllocRatioFlatV2 = fileAllocs[1] / fileAllocs[0]
	}
	rep.RSSDeltaV2KB = loadRSSDeltaKB(v2Path)
	rep.RSSDeltaFlatKB = loadRSSDeltaKB(flatPath)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)

	if *table != "" {
		if err := os.WriteFile(*table, []byte(markdownTable(rep)), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *table)
	}

	for _, m := range rep.Measurements {
		fmt.Printf("%-32s %14.0f ns/op %12d B/op %8d allocs/op\n", m.Name, m.NsPerOp, m.BytesOp, m.AllocsOp)
	}
	for _, n := range sizes {
		fmt.Printf("ingest parallel speedup n=%d: %.2fx (on %d CPUs)\n", n, rep.IngestSpeedup[fmt.Sprintf("n%d", n)], rep.CPUs)
	}
	fmt.Printf("bundle v2 load speedup: %.2fx; size: %d -> %d bytes (%.2fx smaller)\n",
		rep.LoadSpeedupV2, rep.BundleBytesV1, rep.BundleBytesV2, rep.SizeRatioV1V2)
	fmt.Printf("flat cold-start speedup over v2: %.2fx; alloc ratio flat/v2: %.4f; flat bundle %d bytes\n",
		rep.ColdStartSpeedupFlat, rep.AllocRatioFlatV2, rep.BundleBytesFlat)
	fmt.Printf("snapshot RSS delta: v2 %d KB, flat %d KB\n", rep.RSSDeltaV2KB, rep.RSSDeltaFlatKB)
}

// rssKB reads VmRSS from /proc/self/status; 0 where /proc is unavailable.
func rssKB() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if bytes.HasPrefix(line, []byte("VmRSS:")) {
			var kb int64
			fmt.Sscanf(string(line[len("VmRSS:"):]), "%d", &kb)
			return kb
		}
	}
	return 0
}

// loadRSSDeltaKB measures the resident-set growth of holding one snapshot
// loaded from path. Heap decodes pay their columns in anonymous memory;
// a flat mapping pays only the pages actually touched, and those stay
// file-backed and evictable.
func loadRSSDeltaKB(path string) int64 {
	runtime.GC()
	before := rssKB()
	if before == 0 {
		return 0
	}
	ing, err := persist.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	runtime.GC()
	delta := rssKB() - before
	runtime.KeepAlive(ing)
	if delta < 0 {
		return 0
	}
	return delta
}

func markdownTable(rep Report) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# Offline-phase benchmarks (%s, %s/%s, %d CPUs, %s)\n\n",
		rep.Date, rep.GOOS, rep.GOARCH, rep.CPUs, rep.GoVersion)
	fmt.Fprintf(&b, "| benchmark | ns/op | B/op | allocs/op |\n|---|---:|---:|---:|\n")
	for _, m := range rep.Measurements {
		fmt.Fprintf(&b, "| %s | %.0f | %d | %d |\n", m.Name, m.NsPerOp, m.BytesOp, m.AllocsOp)
	}
	fmt.Fprintf(&b, "\n| derived | value |\n|---|---:|\n")
	for _, k := range []string{"n1000", "n10000", "n100000"} {
		if v, ok := rep.IngestSpeedup[k]; ok {
			fmt.Fprintf(&b, "| ingest parallel speedup %s | %.2fx |\n", k, v)
		}
	}
	fmt.Fprintf(&b, "| bundle load speedup v2 over v1 | %.2fx |\n", rep.LoadSpeedupV2)
	fmt.Fprintf(&b, "| flat cold-start speedup over v2 | %.2fx |\n", rep.ColdStartSpeedupFlat)
	fmt.Fprintf(&b, "| alloc ratio flat/v2 | %.4f |\n", rep.AllocRatioFlatV2)
	fmt.Fprintf(&b, "| bundle size v1 | %d bytes |\n", rep.BundleBytesV1)
	fmt.Fprintf(&b, "| bundle size v2 | %d bytes |\n", rep.BundleBytesV2)
	fmt.Fprintf(&b, "| bundle size flat | %d bytes |\n", rep.BundleBytesFlat)
	fmt.Fprintf(&b, "| size ratio v1/v2 | %.2fx |\n", rep.SizeRatioV1V2)
	fmt.Fprintf(&b, "| snapshot RSS delta v2 | %d KB |\n", rep.RSSDeltaV2KB)
	fmt.Fprintf(&b, "| snapshot RSS delta flat | %d KB |\n", rep.RSSDeltaFlatKB)
	fmt.Fprintf(&b, "\nIngest parallel speedup is bounded by GOMAXPROCS (%d here) — on a\nsingle-CPU runner serial and parallel coincide, so figures near 0.99x\nare goroutine overhead, not a regression. The v2 load speedup, the flat\ncold-start speedup, and the size ratios are machine independent.\n", rep.GoMaxProcs)
	return b.String()
}
