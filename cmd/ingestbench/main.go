// Command ingestbench measures the offline-phase performance — Algorithm 1
// ingestion serial vs parallel across world sizes, and bundle loading in
// the JSON v1 vs binary v2 persistence formats — and records the numbers
// as JSON, so optimization work has a checked-in before/after record.
//
// The parallel ingest numbers are bounded by core count: on a single-core
// machine serial and parallel coincide (modulo goroutine overhead), and the
// v2 load and size wins are the only machine-independent results.
//
//	go run ./cmd/ingestbench -out BENCH_ingest.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"medrelax/internal/core"
	"medrelax/internal/corpus"
	"medrelax/internal/eks"
	"medrelax/internal/match"
	"medrelax/internal/medkb"
	"medrelax/internal/persist"
	"medrelax/internal/synthkb"
)

// Measurement is one benchmark row.
type Measurement struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"nsPerOp"`
	AllocsOp int64   `json:"allocsPerOp"`
	BytesOp  int64   `json:"bytesPerOp"`
	Ops      int     `json:"ops"`
}

// Report is the BENCH_ingest.json document.
type Report struct {
	Date         string        `json:"date"`
	GOOS         string        `json:"goos"`
	GOARCH       string        `json:"goarch"`
	CPUs         int           `json:"cpus"`
	GoVersion    string        `json:"goVersion"`
	Measurements []Measurement `json:"measurements"`
	// IngestSpeedup maps world size to serial ns/op over parallel ns/op.
	// Bounded by core count; ~1.0 on a single-core machine.
	IngestSpeedup map[string]float64 `json:"ingestSpeedup"`
	// LoadSpeedupV2 is v1 load ns/op over v2 load ns/op at the largest
	// measured world: how much faster the binary format restores.
	LoadSpeedupV2 float64 `json:"loadSpeedupV2"`
	// SizeRatioV1V2 is v1 bytes over v2 bytes for the same ingestion.
	SizeRatioV1V2 float64 `json:"sizeRatioV1V2"`
	// BundleBytesV1 and BundleBytesV2 are the encoded sizes themselves.
	BundleBytesV1 int `json:"bundleBytesV1"`
	BundleBytesV2 int `json:"bundleBytesV2"`
}

func row(name string, r testing.BenchmarkResult) Measurement {
	return Measurement{
		Name:     name,
		NsPerOp:  float64(r.NsPerOp()),
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
		Ops:      r.N,
	}
}

// buildWorld regenerates a deterministic synthkb+medkb world grown to the
// target EKS size. Ingestion mutates the graph, so every measured run needs
// a fresh world.
func buildWorld(target int) (*medkb.MED, *eks.Graph, *corpus.Corpus, error) {
	cpp := 1
	if target > 2000 {
		cpp = 20
	}
	w, err := synthkb.Generate(synthkb.Config{Seed: 42, ConditionsPerPair: cpp})
	if err != nil {
		return nil, nil, nil, err
	}
	med, err := medkb.Generate(w, medkb.Config{Seed: 43, Drugs: 40})
	if err != nil {
		return nil, nil, nil, err
	}
	corp := medkb.BuildCorpus(w, med, medkb.CorpusConfig{Seed: 44})
	g := w.Graph
	next := eks.ConceptID(1)
	for _, id := range g.ConceptIDs() {
		if id >= next {
			next = id + 1
		}
	}
	for i := 0; g.Len() < target; i++ {
		parent := w.Findings[i%len(w.Findings)]
		if err := g.AddConcept(eks.Concept{ID: next, Name: fmt.Sprintf("variant %d of %d", i, parent)}); err != nil {
			return nil, nil, nil, err
		}
		if err := g.AddSubsumption(next, parent); err != nil {
			return nil, nil, nil, err
		}
		next++
	}
	return med, g, corp, nil
}

func benchIngest(n, workers int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			med, g, corp, err := buildWorld(n)
			if err != nil {
				b.Fatal(err)
			}
			mapper := match.NewExact(g)
			b.StartTimer()
			if _, err := core.Ingest(med.Ontology, med.Store, g, corp, mapper, core.IngestOptions{Parallelism: workers}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func main() {
	out := flag.String("out", "BENCH_ingest.json", "output JSON path")
	table := flag.String("table", "", "also write a markdown summary table to this path")
	large := flag.Bool("large", true, "include the 10^5-concept world")
	flag.Parse()

	rep := Report{
		Date:          time.Now().UTC().Format("2006-01-02"),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		GoVersion:     runtime.Version(),
		IngestSpeedup: map[string]float64{},
	}

	sizes := []int{1_000, 10_000}
	if *large {
		sizes = append(sizes, 100_000)
	}
	for _, n := range sizes {
		log.Printf("measuring serial ingest at %d concepts...", n)
		serial := benchIngest(n, 1)
		rep.Measurements = append(rep.Measurements, row(fmt.Sprintf("ingest_serial_n%d", n), serial))
		log.Printf("measuring parallel ingest at %d concepts...", n)
		parallel := benchIngest(n, 0)
		rep.Measurements = append(rep.Measurements, row(fmt.Sprintf("ingest_parallel_n%d", n), parallel))
		if p := parallel.NsPerOp(); p > 0 {
			rep.IngestSpeedup[fmt.Sprintf("n%d", n)] = float64(serial.NsPerOp()) / float64(p)
		}
	}

	loadN := sizes[len(sizes)-1]
	log.Printf("building the %d-concept ingestion for the load benchmark...", loadN)
	med, g, corp, err := buildWorld(loadN)
	if err != nil {
		log.Fatal(err)
	}
	ing, err := core.Ingest(med.Ontology, med.Store, g, corp, match.NewExact(g), core.IngestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var v1, v2 bytes.Buffer
	if err := persist.Save(&v1, ing); err != nil {
		log.Fatal(err)
	}
	if err := persist.SaveBinary(&v2, ing); err != nil {
		log.Fatal(err)
	}
	rep.BundleBytesV1 = v1.Len()
	rep.BundleBytesV2 = v2.Len()
	if v2.Len() > 0 {
		rep.SizeRatioV1V2 = float64(v1.Len()) / float64(v2.Len())
	}

	var loadNs [2]float64
	for i, enc := range []struct {
		name string
		data []byte
	}{{"v1_json", v1.Bytes()}, {"v2_binary", v2.Bytes()}} {
		log.Printf("measuring bundle load (%s, %d bytes)...", enc.name, len(enc.data))
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for j := 0; j < b.N; j++ {
				if _, err := persist.Load(bytes.NewReader(enc.data)); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Measurements = append(rep.Measurements, row(fmt.Sprintf("bundle_load_%s_n%d", enc.name, loadN), r))
		loadNs[i] = float64(r.NsPerOp())
	}
	if loadNs[1] > 0 {
		rep.LoadSpeedupV2 = loadNs[0] / loadNs[1]
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)

	if *table != "" {
		if err := os.WriteFile(*table, []byte(markdownTable(rep)), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *table)
	}

	for _, m := range rep.Measurements {
		fmt.Printf("%-32s %14.0f ns/op %12d B/op %8d allocs/op\n", m.Name, m.NsPerOp, m.BytesOp, m.AllocsOp)
	}
	for _, n := range sizes {
		fmt.Printf("ingest parallel speedup n=%d: %.2fx (on %d CPUs)\n", n, rep.IngestSpeedup[fmt.Sprintf("n%d", n)], rep.CPUs)
	}
	fmt.Printf("bundle v2 load speedup: %.2fx; size: %d -> %d bytes (%.2fx smaller)\n",
		rep.LoadSpeedupV2, rep.BundleBytesV1, rep.BundleBytesV2, rep.SizeRatioV1V2)
}

func markdownTable(rep Report) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# Offline-phase benchmarks (%s, %s/%s, %d CPUs, %s)\n\n",
		rep.Date, rep.GOOS, rep.GOARCH, rep.CPUs, rep.GoVersion)
	fmt.Fprintf(&b, "| benchmark | ns/op | B/op | allocs/op |\n|---|---:|---:|---:|\n")
	for _, m := range rep.Measurements {
		fmt.Fprintf(&b, "| %s | %.0f | %d | %d |\n", m.Name, m.NsPerOp, m.BytesOp, m.AllocsOp)
	}
	fmt.Fprintf(&b, "\n| derived | value |\n|---|---:|\n")
	for _, k := range []string{"n1000", "n10000", "n100000"} {
		if v, ok := rep.IngestSpeedup[k]; ok {
			fmt.Fprintf(&b, "| ingest parallel speedup %s | %.2fx |\n", k, v)
		}
	}
	fmt.Fprintf(&b, "| bundle load speedup v2 over v1 | %.2fx |\n", rep.LoadSpeedupV2)
	fmt.Fprintf(&b, "| bundle size v1 | %d bytes |\n", rep.BundleBytesV1)
	fmt.Fprintf(&b, "| bundle size v2 | %d bytes |\n", rep.BundleBytesV2)
	fmt.Fprintf(&b, "| size ratio v1/v2 | %.2fx |\n", rep.SizeRatioV1V2)
	fmt.Fprintf(&b, "\nIngest parallel speedup is bounded by core count — on a\nsingle-core machine serial and parallel coincide. The v2 load speedup\nand size ratio are machine independent.\n")
	return b.String()
}
