// Command loadgen drives a running kbserver with a zipfian query mix —
// the head-heavy term distribution query-expansion traffic actually has —
// and records what the serving layer does under it: cold vs warm tail
// latency, cache hit/miss/collapse counts, shed behavior past the
// concurrency limit, batch amortization through POST /relax/batch, and —
// against a multi-tenant server — per-tenant warm-up via /t/{name}/
// routing. Results go to BENCH_serve.json and a Markdown summary, so
// cache, admission, and batch behavior is benchmarked, not asserted.
//
// Usage (against a fresh server so the cold phase is really cold):
//
//	kbserver -addr :8080 -load bundle.bin &
//	loadgen -addr http://127.0.0.1:8080 -duration 10s
//
//	kbserver -addr :8080 -bundle alpha=a.bin -bundle beta=b.bin &
//	loadgen -addr http://127.0.0.1:8080 -tenants alpha,beta
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"medrelax/internal/engine"
	"medrelax/internal/persist"
	"medrelax/internal/retry"
	"medrelax/internal/trace"
)

type phaseStats struct {
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	Retries    int     `json:"retries,omitempty"`
	P50Ms      float64 `json:"p50Ms"`
	P95Ms      float64 `json:"p95Ms"`
	P99Ms      float64 `json:"p99Ms"`
	MeanMs     float64 `json:"meanMs"`
	Throughput float64 `json:"requestsPerSecond"`

	// P99LowMs/P99HighMs bound the p99 estimate: the latency stream is
	// cut into arrival-order blocks, p99 is computed per block, and the
	// spread across blocks is reported. A tail statistic from a few
	// hundred samples is noise; the bound says how much.
	P99LowMs  float64 `json:"p99LowMs,omitempty"`
	P99HighMs float64 `json:"p99HighMs,omitempty"`
}

// relaxRetry issues one /relax query, retrying shed (429) and transient
// (503) responses plus transport errors under the shared retry policy. It
// returns the final attempt's latency and status and how many retries were
// spent; status 0 means even the last attempt failed at the transport
// layer.
func relaxRetry(client *http.Client, addr, term string, k int, pol retry.Policy, rng *rand.Rand) (time.Duration, int, int) {
	retries := 0
	for attempt := 0; ; attempt++ {
		url := fmt.Sprintf("%s/relax?term=%s&k=%d", addr, queryEscape(term), k)
		start := time.Now()
		resp, err := client.Get(url)
		if err != nil {
			if attempt < pol.MaxRetries {
				time.Sleep(pol.Wait(attempt, 0, rng))
				retries++
				continue
			}
			return 0, 0, retries
		}
		retryAfter := retry.After(resp.Header)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		d := time.Since(start)
		if retry.RetryableStatus(resp.StatusCode) && attempt < pol.MaxRetries {
			time.Sleep(pol.Wait(attempt, retryAfter, rng))
			retries++
			continue
		}
		return d, resp.StatusCode, retries
	}
}

type burstStats struct {
	Requests int `json:"requests"`
	OK       int `json:"ok"`
	Shed     int `json:"shed429"`
	Errors   int `json:"errors"`
}

// batchStats is the batch phase's record for one batch size.
type batchStats struct {
	Size        int     `json:"size"`
	Batches     int     `json:"batches"`
	Errors      int     `json:"errors"`
	P50Ms       float64 `json:"p50Ms"`
	P95Ms       float64 `json:"p95Ms"`
	ItemsPerSec float64 `json:"itemsPerSecond"`
}

// explainStats is the explain phase's record: the attributed-explanation
// variant of GET /relax (`explain=true`) measured against the classic
// responses. Warm rows are cache hits — explain variants cache under their
// own key, so the first explain pass pays assembly and later passes do
// not. Uncached rows carry `Cache-Control: no-store`, pricing the per-path
// explain assembly itself rather than the cache. PlainUnchanged is the
// byte-identity contract: explain traffic must leave explain=false
// responses byte-for-byte untouched.
type explainStats struct {
	WarmPlain             phaseStats `json:"warmPlain"`
	FirstPassOn           phaseStats `json:"explainFirstPass"`
	WarmOn                phaseStats `json:"explainWarm"`
	UncachedPlain         phaseStats `json:"uncachedPlain"`
	UncachedOn            phaseStats `json:"uncachedExplain"`
	WarmOverheadP95Ms     float64    `json:"explainWarmP95OverheadMs"`
	UncachedOverheadP95Ms float64    `json:"explainUncachedP95OverheadMs"`
	PlainUnchanged        bool       `json:"plainBytesUnchangedByExplain"`
	ExplainFieldsSeen     bool       `json:"explainFieldsPresent"`
}

type report struct {
	Addr          string  `json:"addr"`
	Terms         int     `json:"terms"`
	ZipfS         float64 `json:"zipfS"`
	K             int     `json:"k"`
	Concurrency   int     `json:"concurrency"`
	DurationSec   float64 `json:"warmDurationSeconds"`
	BurstWorkers  int     `json:"burstWorkers"`
	GeneratededAt string  `json:"generatedAt"`

	Cold      phaseStats `json:"cold"`
	Warm      phaseStats `json:"warm"`
	ColdSweep phaseStats `json:"coldSweep"`
	Burst     burstStats `json:"burst"`

	WarmSpeedupP95        float64 `json:"warmSpeedupP95"`
	UncachedBaselineP50Ms float64 `json:"uncachedBaselineP50Ms,omitempty"`
	UncachedSpeedupP50    float64 `json:"uncachedSpeedupP50,omitempty"`
	ByteIdentical         bool    `json:"cachedResponsesByteIdentical"`

	Batch              []batchStats `json:"batch,omitempty"`
	BatchByteIdentical bool         `json:"batchItemsByteIdenticalToSequential"`
	BatchItemSpeedup   float64      `json:"batchItemSpeedupVsSequential,omitempty"`

	Explain *explainStats `json:"explain,omitempty"`

	Tenants map[string]phaseStats `json:"tenants,omitempty"`

	Density *densityStats `json:"density,omitempty"`

	Router *routerStats `json:"router,omitempty"`

	Trace *traceStats `json:"trace,omitempty"`

	ServerMetrics map[string]float64 `json:"serverMetrics"`
}

// routerStats is the router phase's record: the same zipfian workload
// driven back-to-back through one kbserver replica directly and through
// kbrouter fronting the cluster, plus a batch byte-identity check across
// the scatter-gather path.
type routerStats struct {
	Addr               string             `json:"addr"`
	Direct             phaseStats         `json:"direct"`
	ViaRouter          phaseStats         `json:"viaRouter"`
	ThroughputRatio    float64            `json:"routerOverDirectThroughput,omitempty"`
	P95OverheadMs      float64            `json:"routerP95OverheadMs"`
	BatchByteIdentical bool               `json:"batchByteIdenticalToDirect"`
	RouterMetrics      map[string]float64 `json:"routerMetrics,omitempty"`
}

// traceStage is the latency distribution of one span name across the
// traced requests — one serving stage (router admission, scatter leg,
// replica cache probe, relax kernel) isolated from end-to-end latency.
type traceStage struct {
	Span  string  `json:"span"`
	Count int     `json:"count"`
	P50Ms float64 `json:"p50Ms"`
	P95Ms float64 `json:"p95Ms"`
}

// traceStats is the trace phase's record: explicitly-traced requests
// (client-minted traceparent headers), the traces recovered from
// /debug/traces afterwards, and the per-stage breakdown.
type traceStats struct {
	Addr      string       `json:"addr"`
	Requested int          `json:"tracedRequests"`
	Captured  int          `json:"tracesCaptured"`
	Stages    []traceStage `json:"stages,omitempty"`
}

// densityFormat is one format's multi-tenant residency measurement: N
// snapshots of the same bundle loaded side by side into a Registry, RSS
// sampled from /proc/self/status.
type densityFormat struct {
	Format      string  `json:"format"`
	Residency   string  `json:"residency"`
	BundleBytes int64   `json:"bundleBytes"`
	Tenants     int     `json:"tenants"`
	LoadTotalMs float64 `json:"loadTotalMs"`
	// RSSTotalDeltaKB is resident-set growth from zero to N tenants;
	// RSSPerTenantKB averages it. RSSMarginalPerTenantKB is the growth per
	// tenant after the first — the marginal cost of one more tenant of the
	// same bundle, which is where file-backed mapped pages pay off.
	RSSTotalDeltaKB        int64   `json:"rssTotalDeltaKB"`
	RSSPerTenantKB         float64 `json:"rssPerTenantKB"`
	RSSMarginalPerTenantKB float64 `json:"rssMarginalPerTenantKB"`
}

// densityStats compares multi-tenant memory density of the v2 heap decode
// against the zero-copy flat mapping for the same world.
type densityStats struct {
	V2   densityFormat `json:"v2"`
	Flat densityFormat `json:"flat"`
	// MarginalRatioV2OverFlat is how many times more resident memory one
	// additional v2 tenant costs than one additional flat tenant.
	MarginalRatioV2OverFlat float64 `json:"marginalRatioV2OverFlat,omitempty"`
}

// batchQuery and batchItemResp mirror the wire shapes of POST /relax/batch.
type batchQuery struct {
	Term    string `json:"term"`
	Context string `json:"context,omitempty"`
	K       int    `json:"k"`
}

type batchItemResp struct {
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body"`
}

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8080", "kbserver base URL")
		terms      = flag.Int("terms", 200, "distinct terms to fetch from /terms")
		zipfS      = flag.Float64("zipf-s", 1.2, "zipf skew (>1; larger = heavier head)")
		k          = flag.Int("k", 10, "k per /relax request")
		conc       = flag.Int("conc", 16, "concurrent workers in the warm phase")
		duration   = flag.Duration("duration", 10*time.Second, "warm phase duration")
		burstN     = flag.Int("burst", 128, "concurrent workers in the shed burst (0 skips)")
		burstReq   = flag.Int("burst-requests", 20, "requests per burst worker")
		seed       = flag.Int64("seed", 1, "workload seed")
		coldN      = flag.Int("cold-samples", 2000, "uncached samples for the cold and coldsweep phases (one pass over the terms at minimum)")
		baseP50    = flag.Float64("baseline-cold-p50-ms", 0, "prior uncached p50 in ms; >0 reports the coldsweep speedup against it")
		retries    = flag.Int("retries", 2, "max client retries per request on 429/503 (cold+warm phases; 0 disables)")
		retryLo    = flag.Duration("retry-base", 50*time.Millisecond, "exponential backoff base")
		retryHi    = flag.Duration("retry-cap", 2*time.Second, "exponential backoff cap")
		batchCSV   = flag.String("batch-sizes", "4,16,64", "comma-separated POST /relax/batch sizes for the batch phase (empty skips)")
		batchN     = flag.Int("batch-count", 50, "batches per size in the batch phase")
		tenCSV     = flag.String("tenants", "", "comma-separated tenant names to drive via /t/{name}/ (empty skips; needs kbserver -bundle)")
		tenDur     = flag.Duration("tenant-duration", 3*time.Second, "per-tenant phase duration")
		outJSON    = flag.String("out", "BENCH_serve.json", "JSON report path")
		outMD      = flag.String("md", "results/BENCH_serve.md", "Markdown report path")
		routerAddr = flag.String("router-addr", "", "kbrouter base URL; runs the router phase comparing throughput against the direct -addr replica (empty skips)")
		routerDur  = flag.Duration("router-duration", 5*time.Second, "router phase duration per side (direct, then routed)")
		explainOn  = flag.Bool("explain", false, "run the explain phase: explain=true vs explain=false latency, warm and uncached, plus the plain-response byte-identity check (targets -addr)")
		traceOn    = flag.Bool("trace", false, "run the trace phase: mint traceparent headers, scrape /debug/traces afterwards, and report a per-stage latency breakdown (targets -router-addr when set, else -addr)")
		traceN     = flag.Int("trace-requests", 64, "explicitly-traced GET /relax requests in the trace phase (plus traced batches)")

		denPath = flag.String("density-bundle", "", "bundle to measure multi-tenant RSS density with (empty skips; runs in-process, no server traffic)")
		denN    = flag.Int("density-tenants", 8, "tenant count for the density phase")
		denOnly = flag.Bool("density-only", false, "run only the density phase (no server needed); requires -density-bundle")
	)
	flag.Parse()

	if *denOnly {
		if *denPath == "" {
			log.Fatal("loadgen: -density-only requires -density-bundle")
		}
		den, err := runDensity(*denPath, *denN)
		if err != nil {
			log.Fatalf("loadgen: density phase: %v", err)
		}
		rep := &report{GeneratededAt: time.Now().UTC().Format(time.RFC3339), Density: den}
		if err := writeJSON(*outJSON, rep); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		if err := writeMarkdown(*outMD, rep); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		log.Printf("loadgen: density-only run wrote %s and %s", *outJSON, *outMD)
		return
	}
	pol := retry.Policy{MaxRetries: *retries, Base: *retryLo, Cap: *retryHi}

	// Default transports keep only two idle conns per host: at high
	// worker counts every request would pay TCP setup, measuring the
	// dialer instead of the server. Keep a conn per worker alive.
	maxConns := *conc
	if *burstN > maxConns {
		maxConns = *burstN
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        maxConns + 8,
			MaxIdleConnsPerHost: maxConns + 8,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	termList := fetchTerms(client, *addr, *terms)
	if len(termList) == 0 {
		log.Fatal("loadgen: server returned no terms")
	}
	log.Printf("loadgen: %d terms, zipf s=%.2f, k=%d", len(termList), *zipfS, *k)

	rep := &report{
		Addr: *addr, Terms: len(termList), ZipfS: *zipfS, K: *k,
		Concurrency: *conc, DurationSec: duration.Seconds(), BurstWorkers: *burstN,
		GeneratededAt: time.Now().UTC().Format(time.RFC3339),
	}

	// Phase 1 — cold: every term exactly once against an empty cache, then
	// `Cache-Control: no-store` requests (still uncached computations, but
	// without polluting the now-priming cache) until -cold-samples total.
	// A p99 from one pass over a few hundred terms is mostly noise; the
	// top-up gives the tail estimate enough data to mean something.
	log.Printf("loadgen: cold phase (sequential, all misses, >=%d samples)", *coldN)
	coldLat := make([]time.Duration, 0, *coldN)
	coldErrs, coldRetries := 0, 0
	coldRng := rand.New(rand.NewSource(*seed + 7919))
	coldStart := time.Now()
	for _, term := range termList {
		d, code, r := relaxRetry(client, *addr, term, *k, pol, coldRng)
		coldRetries += r
		if code != http.StatusOK {
			coldErrs++
			continue
		}
		coldLat = append(coldLat, d)
	}
	for len(coldLat)+coldErrs < *coldN {
		term := termList[coldRng.Intn(len(termList))]
		d, code := timedRelaxNoStore(client, *addr, term, *k)
		if code != http.StatusOK {
			coldErrs++
			continue
		}
		coldLat = append(coldLat, d)
	}
	rep.Cold = summarize(coldLat, coldErrs, time.Since(coldStart))
	rep.Cold.Retries = coldRetries

	// Phase 2 — warm: zipfian mix, concurrent, head terms now cached.
	log.Printf("loadgen: warm phase (%d workers, %s)", *conc, *duration)
	var mu sync.Mutex
	warmLat := make([]time.Duration, 0, 1<<16)
	warmErrs, warmRetries := 0, 0
	var wg sync.WaitGroup
	warmStart := time.Now()
	deadline := warmStart.Add(*duration)
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			zipf := rand.NewZipf(rng, *zipfS, 1, uint64(len(termList)-1))
			local := make([]time.Duration, 0, 4096)
			errs, rts := 0, 0
			for time.Now().Before(deadline) {
				term := termList[zipf.Uint64()]
				d, code, r := relaxRetry(client, *addr, term, *k, pol, rng)
				rts += r
				if code != http.StatusOK {
					errs++
					continue
				}
				local = append(local, d)
			}
			mu.Lock()
			warmLat = append(warmLat, local...)
			warmErrs += errs
			warmRetries += rts
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	rep.Warm = summarize(warmLat, warmErrs, time.Since(warmStart))
	rep.Warm.Retries = warmRetries
	if rep.Warm.P95Ms > 0 {
		rep.WarmSpeedupP95 = rep.Cold.P95Ms / rep.Warm.P95Ms
	}

	// Phase 3 — coldsweep: the uncached path on a warm server. Every
	// request carries `Cache-Control: no-store`, so the result cache is
	// out of the measurement entirely — this is the number the offline
	// materialization and candidate index exist to move.
	log.Printf("loadgen: coldsweep phase (sequential, no-store, %d samples)", *coldN)
	sweepLat := make([]time.Duration, 0, *coldN)
	sweepErrs := 0
	sweepRng := rand.New(rand.NewSource(*seed + 104729))
	sweepZipf := rand.NewZipf(sweepRng, *zipfS, 1, uint64(len(termList)-1))
	sweepStart := time.Now()
	for len(sweepLat)+sweepErrs < *coldN {
		term := termList[sweepZipf.Uint64()]
		d, code := timedRelaxNoStore(client, *addr, term, *k)
		if code != http.StatusOK {
			sweepErrs++
			continue
		}
		sweepLat = append(sweepLat, d)
	}
	rep.ColdSweep = summarize(sweepLat, sweepErrs, time.Since(sweepStart))
	if *baseP50 > 0 && rep.ColdSweep.P50Ms > 0 {
		rep.UncachedBaselineP50Ms = *baseP50
		rep.UncachedSpeedupP50 = *baseP50 / rep.ColdSweep.P50Ms
	}

	// Phase 4 — burst: cache-busting random k past the concurrency limit;
	// the server must answer every request immediately with 200 or 429.
	if *burstN > 0 {
		log.Printf("loadgen: shed burst (%d workers x %d requests)", *burstN, *burstReq)
		var ok, shed, errs int
		var bmu sync.Mutex
		for w := 0; w < *burstN; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(*seed + 1000 + int64(w)))
				var lok, lshed, lerr int
				for i := 0; i < *burstReq; i++ {
					term := termList[rng.Intn(len(termList))]
					kk := 1 + rng.Intn(1000)
					_, code := timedRelax(client, *addr, term, kk)
					switch code {
					case http.StatusOK:
						lok++
					case http.StatusTooManyRequests:
						lshed++
					default:
						lerr++
					}
				}
				bmu.Lock()
				ok += lok
				shed += lshed
				errs += lerr
				bmu.Unlock()
			}(w)
		}
		wg.Wait()
		rep.Burst = burstStats{Requests: *burstN * *burstReq, OK: ok, Shed: shed, Errors: errs}
	}

	// Phase 5 — cached responses must be byte-identical to uncached ones.
	rep.ByteIdentical = true
	for i := 0; i < 5 && i < len(termList); i++ {
		url := fmt.Sprintf("%s/relax?term=%s&k=%d", *addr, queryEscape(termList[i]), *k)
		a := fetchBody(client, url)
		b := fetchBody(client, url)
		if a == "" || a != b {
			rep.ByteIdentical = false
			log.Printf("loadgen: BYTE MISMATCH for %s", termList[i])
		}
	}

	// Phase 6 — batch: mixed sizes through POST /relax/batch with
	// cache-busting random k, so batches measure shared-scratch
	// computation, not cache lookups; then a byte-identity sweep and a
	// same-size sequential control for the amortization claim.
	rep.BatchByteIdentical = true
	if sizes := parseSizes(*batchCSV); len(sizes) > 0 {
		brng := rand.New(rand.NewSource(*seed + 31337))
		bzipf := rand.NewZipf(brng, *zipfS, 1, uint64(len(termList)-1))
		for _, size := range sizes {
			log.Printf("loadgen: batch phase (size %d x %d batches)", size, *batchN)
			lat := make([]time.Duration, 0, *batchN)
			errs, items := 0, 0
			start := time.Now()
			for b := 0; b < *batchN; b++ {
				queries := make([]batchQuery, size)
				for i := range queries {
					queries[i] = batchQuery{Term: termList[bzipf.Uint64()], K: 1 + brng.Intn(200)}
				}
				d, code, resp := postBatch(client, *addr, queries)
				if code != http.StatusOK || len(resp) != size {
					errs++
					continue
				}
				lat = append(lat, d)
				items += size
			}
			elapsed := time.Since(start)
			st := summarize(lat, errs, elapsed)
			bs := batchStats{Size: size, Batches: *batchN, Errors: errs, P50Ms: st.P50Ms, P95Ms: st.P95Ms}
			if elapsed > 0 {
				bs.ItemsPerSec = float64(items) / elapsed.Seconds()
			}
			rep.Batch = append(rep.Batch, bs)
		}

		// Sequential control: the same item count as the largest batch
		// size's run, one GET /relax per item, same term/k distribution.
		largest := sizes[len(sizes)-1]
		seqItems := largest * *batchN
		seqStart := time.Now()
		for i := 0; i < seqItems; i++ {
			timedRelax(client, *addr, termList[bzipf.Uint64()], 1+brng.Intn(200))
		}
		if el := time.Since(seqStart); el > 0 && len(rep.Batch) > 0 {
			seqRate := float64(seqItems) / el.Seconds()
			if seqRate > 0 {
				rep.BatchItemSpeedup = rep.Batch[len(rep.Batch)-1].ItemsPerSec / seqRate
			}
		}

		// Byte identity: every batch item body must equal the body of the
		// same query issued as GET /relax (the batch ran first, so the
		// sequential side may answer from the batch-populated cache —
		// byte equality is the contract either way).
		idQueries := make([]batchQuery, 0, 8)
		for i := 0; i < 8 && i < len(termList); i++ {
			idQueries = append(idQueries, batchQuery{Term: termList[i], K: 1 + brng.Intn(1000)})
		}
		_, code, items2 := postBatch(client, *addr, idQueries)
		if code != http.StatusOK || len(items2) != len(idQueries) {
			rep.BatchByteIdentical = false
			log.Printf("loadgen: batch identity POST = %d (%d items)", code, len(items2))
		} else {
			for i, q := range idQueries {
				url := fmt.Sprintf("%s/relax?term=%s&k=%d", *addr, queryEscape(q.Term), q.K)
				seq := strings.TrimRight(fetchBody(client, url), "\n")
				if items2[i].Status != http.StatusOK || seq == "" || string(items2[i].Body) != seq {
					rep.BatchByteIdentical = false
					log.Printf("loadgen: BATCH BYTE MISMATCH for %s k=%d", q.Term, q.K)
				}
			}
		}
	}

	// Explain phase — the attributed-explanation variant against the
	// classic responses: warm (explain variants cache under their own key)
	// and uncached (`no-store`), then the byte-identity contract that
	// explain traffic leaves explain=false responses untouched.
	if *explainOn {
		rep.Explain = runExplainPhase(client, *addr, termList, *k)
	}

	// Phase 7 — tenants: drive each named tenant through its /t/{name}/
	// prefix. Separate cache partitions mean each tenant pays its own
	// cold misses and warms independently.
	if *tenCSV != "" {
		rep.Tenants = map[string]phaseStats{}
		for _, name := range strings.Split(*tenCSV, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			base := strings.TrimRight(*addr, "/") + "/t/" + name
			tTerms := fetchTerms(client, base, *terms)
			if len(tTerms) == 0 {
				log.Fatalf("loadgen: tenant %q returned no terms", name)
			}
			log.Printf("loadgen: tenant phase (%q, %d terms, %s)", name, len(tTerms), *tenDur)
			trng := rand.New(rand.NewSource(*seed + 53 + int64(len(name))))
			tzipf := rand.NewZipf(trng, *zipfS, 1, uint64(len(tTerms)-1))
			lat := make([]time.Duration, 0, 4096)
			errs := 0
			start := time.Now()
			deadline := start.Add(*tenDur)
			for time.Now().Before(deadline) {
				d, code := timedRelax(client, base, tTerms[tzipf.Uint64()], *k)
				if code != http.StatusOK {
					errs++
					continue
				}
				lat = append(lat, d)
			}
			rep.Tenants[name] = summarize(lat, errs, time.Since(start))
		}
	}

	// Phase 8 — router: the same workload through kbrouter fronting the
	// cluster vs one replica directly. Direct side runs first so both
	// sides see equally-warm caches; the routed side then pays consistent
	// hashing, health bookkeeping, and one extra network hop — the number
	// this phase exists to bound.
	if *routerAddr != "" {
		rep.Router = runRouterPhase(client, *addr, *routerAddr, termList, pol, *zipfS, *k, *conc, *routerDur, *seed)
	}

	// Trace phase — explicitly-traced requests with client-minted
	// traceparent headers, then /debug/traces scraped to break end-to-end
	// latency into serving stages. Runs after the traffic phases so the
	// ring buffer's newest entries are ours.
	if *traceOn {
		target := *addr
		if *routerAddr != "" {
			target = *routerAddr
		}
		rep.Trace = runTracePhase(client, target, termList, *k, *traceN, *seed)
	}

	// Phase 9 — density: how much resident memory N tenants of the same
	// bundle cost, v2 heap decode vs zero-copy flat mapping. Runs in this
	// process (the phase is about snapshot residency, not server traffic),
	// so RSS deltas are clean of the HTTP client's buffers: both formats
	// are measured the same way from the same baseline discipline.
	if *denPath != "" {
		den, err := runDensity(*denPath, *denN)
		if err != nil {
			log.Fatalf("loadgen: density phase: %v", err)
		}
		rep.Density = den
	}

	rep.ServerMetrics = scrapeMetrics(client, *addr)

	if err := writeJSON(*outJSON, rep); err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	if err := writeMarkdown(*outMD, rep); err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	log.Printf("loadgen: cold p95 %.2fms, warm p95 %.2fms (%.1fx), uncached p50 %.3fms, %d shed, wrote %s and %s",
		rep.Cold.P95Ms, rep.Warm.P95Ms, rep.WarmSpeedupP95, rep.ColdSweep.P50Ms, rep.Burst.Shed, *outJSON, *outMD)
}

// runExplainPhase measures the explain=true variant of GET /relax against
// the classic responses, warm and uncached, then checks that the explain
// traffic left explain=false responses byte-identical. All passes walk the
// same term list sequentially so the rows compare like against like.
func runExplainPhase(client *http.Client, addr string, termList []string, k int) *explainStats {
	es := &explainStats{PlainUnchanged: true}

	relaxURL := func(term string, explain bool) string {
		u := fmt.Sprintf("%s/relax?term=%s&k=%d", addr, queryEscape(term), k)
		if explain {
			u += "&explain=true"
		}
		return u
	}
	sweep := func(explain, noStore bool) phaseStats {
		lat := make([]time.Duration, 0, len(termList))
		errs := 0
		start := time.Now()
		for _, term := range termList {
			req, err := http.NewRequest(http.MethodGet, relaxURL(term, explain), nil)
			if err != nil {
				errs++
				continue
			}
			if noStore {
				req.Header.Set("Cache-Control", "no-store")
			}
			rstart := time.Now()
			resp, err := client.Do(req)
			if err != nil {
				errs++
				continue
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil || resp.StatusCode != http.StatusOK {
				errs++
				continue
			}
			lat = append(lat, time.Since(rstart))
			if explain && strings.Contains(string(body), `"explain"`) {
				es.ExplainFieldsSeen = true
			}
		}
		return summarize(lat, errs, time.Since(start))
	}

	// Snapshot plain bodies before any explain traffic so the identity
	// check can prove the explain variants never leak into the plain cache.
	idN := 8
	if idN > len(termList) {
		idN = len(termList)
	}
	before := make([]string, idN)
	for i := 0; i < idN; i++ {
		before[i] = fetchBody(client, relaxURL(termList[i], false))
	}

	log.Printf("loadgen: explain phase (%d terms: warm plain, explain first pass, explain warm, uncached both)", len(termList))
	es.WarmPlain = sweep(false, false)  // cached since the earlier phases
	es.FirstPassOn = sweep(true, false) // explain variant misses: pays path assembly
	es.WarmOn = sweep(true, false)      // explain variant hits
	es.UncachedPlain = sweep(false, true)
	es.UncachedOn = sweep(true, true)
	es.WarmOverheadP95Ms = es.WarmOn.P95Ms - es.WarmPlain.P95Ms
	es.UncachedOverheadP95Ms = es.UncachedOn.P95Ms - es.UncachedPlain.P95Ms

	for i := 0; i < idN; i++ {
		after := fetchBody(client, relaxURL(termList[i], false))
		if before[i] == "" || before[i] != after {
			es.PlainUnchanged = false
			log.Printf("loadgen: EXPLAIN PLAIN BYTE MISMATCH for %s", termList[i])
		}
	}
	return es
}

// runRouterPhase drives the zipfian mix through one replica directly and
// then through kbrouter, back to back, and checks scatter-gather batch
// bytes against the direct replica.
func runRouterPhase(client *http.Client, direct, routerAddr string, termList []string, pol retry.Policy, zipfS float64, k, conc int, dur time.Duration, seed int64) *routerStats {
	rs := &routerStats{Addr: routerAddr, BatchByteIdentical: true}

	measure := func(base string, seedOff int64) phaseStats {
		var mu sync.Mutex
		lat := make([]time.Duration, 0, 1<<14)
		errs, rts := 0, 0
		var wg sync.WaitGroup
		start := time.Now()
		deadline := start.Add(dur)
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + seedOff + int64(w)))
				zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(termList)-1))
				local := make([]time.Duration, 0, 4096)
				lerrs, lrts := 0, 0
				for time.Now().Before(deadline) {
					d, code, r := relaxRetry(client, base, termList[zipf.Uint64()], k, pol, rng)
					lrts += r
					if code != http.StatusOK {
						lerrs++
						continue
					}
					local = append(local, d)
				}
				mu.Lock()
				lat = append(lat, local...)
				errs += lerrs
				rts += lrts
				mu.Unlock()
			}(w)
		}
		wg.Wait()
		st := summarize(lat, errs, time.Since(start))
		st.Retries = rts
		return st
	}

	log.Printf("loadgen: router phase, direct side (%d workers, %s against %s)", conc, dur, direct)
	rs.Direct = measure(direct, 424243)
	log.Printf("loadgen: router phase, routed side (%d workers, %s against %s)", conc, dur, routerAddr)
	rs.ViaRouter = measure(routerAddr, 424243)
	if rs.Direct.Throughput > 0 {
		rs.ThroughputRatio = rs.ViaRouter.Throughput / rs.Direct.Throughput
	}
	rs.P95OverheadMs = rs.ViaRouter.P95Ms - rs.Direct.P95Ms

	// Batch byte-identity across the scatter-gather: the same POST body
	// must come back byte-equal from the router and from one replica.
	brng := rand.New(rand.NewSource(seed + 777))
	bzipf := rand.NewZipf(brng, zipfS, 1, uint64(len(termList)-1))
	queries := make([]batchQuery, 32)
	for i := range queries {
		queries[i] = batchQuery{Term: termList[bzipf.Uint64()], K: 1 + brng.Intn(100)}
	}
	payload, err := json.Marshal(map[string]any{"queries": queries})
	if err != nil {
		rs.BatchByteIdentical = false
		return rs
	}
	post := func(base string) []byte {
		resp, err := client.Post(base+"/relax/batch", "application/json", bytes.NewReader(payload))
		if err != nil {
			return nil
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil
		}
		body, _ := io.ReadAll(resp.Body)
		return body
	}
	d := post(direct)
	r := post(routerAddr)
	if d == nil || r == nil || !bytes.Equal(d, r) {
		rs.BatchByteIdentical = false
		log.Printf("loadgen: ROUTER BATCH BYTE MISMATCH (direct %d bytes, routed %d bytes)", len(d), len(r))
	}

	rs.RouterMetrics = scrapeMetricsList(client, routerAddr, []string{
		"kbrouter_http_requests_total",
		"kbrouter_http_shed_total",
		"kbrouter_replica_requests_total",
		"kbrouter_replica_retries_total",
		"kbrouter_replica_errors_total",
		"kbrouter_replica_healthy",
		"kbrouter_health_transitions_total",
		"kbrouter_scatter_shard_failures_total",
	})
	return rs
}

// traceStageNames are the span names the breakdown reports, in display
// order. Router stages only appear when the phase targets kbrouter; the
// replica-side spans arrive in the same traces via the backhaul header.
var traceStageNames = []string{
	"router.admission", "router.shard", "serving.admission", "serving.cache", "relax.kernel",
}

// runTracePhase issues explicitly-traced /relax and /relax/batch requests
// (minted traceparent, always sampled), scrapes /debug/traces from the
// target, and summarizes per-span-name latency across the traces it finds.
func runTracePhase(client *http.Client, base string, termList []string, k, n int, seed int64) *traceStats {
	ts := &traceStats{Addr: base}
	rng := rand.New(rand.NewSource(seed + 99991))
	minted := map[string]bool{}

	log.Printf("loadgen: trace phase (%d traced GETs + 8 traced batches against %s)", n, base)
	for i := 0; i < n; i++ {
		header, id := trace.NewTraceparent()
		url := fmt.Sprintf("%s/relax?term=%s&k=%d", base, queryEscape(termList[rng.Intn(len(termList))]), k)
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			continue
		}
		req.Header.Set(trace.TraceparentHeader, header)
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			minted[id] = true
		}
	}
	for b := 0; b < 8; b++ {
		queries := make([]batchQuery, 8)
		for i := range queries {
			queries[i] = batchQuery{Term: termList[rng.Intn(len(termList))], K: k}
		}
		payload, err := json.Marshal(map[string]any{"queries": queries})
		if err != nil {
			continue
		}
		header, id := trace.NewTraceparent()
		req, err := http.NewRequest(http.MethodPost, base+"/relax/batch", bytes.NewReader(payload))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(trace.TraceparentHeader, header)
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			minted[id] = true
		}
	}
	ts.Requested = len(minted)

	body := fetchBody(client, base+"/debug/traces?limit=1024")
	var out struct {
		Traces []*trace.Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		log.Printf("loadgen: trace phase: /debug/traces scrape failed: %v", err)
		return ts
	}
	durs := map[string][]time.Duration{}
	for _, tr := range out.Traces {
		if !minted[tr.TraceID] {
			continue
		}
		ts.Captured++
		for _, s := range tr.Spans {
			durs[s.Name] = append(durs[s.Name], time.Duration(s.DurMs*float64(time.Millisecond)))
		}
	}
	for _, name := range traceStageNames {
		d := durs[name]
		if len(d) == 0 {
			continue
		}
		slices.Sort(d)
		ts.Stages = append(ts.Stages, traceStage{
			Span: name, Count: len(d),
			P50Ms: ms(quantile(d, 0.50)), P95Ms: ms(quantile(d, 0.95)),
		})
	}
	log.Printf("loadgen: trace phase: %d/%d traces recovered, %d stages", ts.Captured, ts.Requested, len(ts.Stages))
	return ts
}

// runDensity loads the bundle once, re-saves it as v2 binary and v4 flat,
// then measures what N side-by-side tenants of each format cost in
// resident memory. v2 tenants each decode a private heap copy; flat
// tenants map the same file, so the kernel shares its pages and the
// marginal tenant should cost close to nothing.
func runDensity(bundle string, tenants int) (*densityStats, error) {
	if tenants < 2 {
		tenants = 2 // marginal-cost math needs at least a second tenant
	}
	ing, err := persist.LoadFile(bundle)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", bundle, err)
	}
	dir, err := os.MkdirTemp("", "loadgen-density-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	v2Path := filepath.Join(dir, "world.bundle")
	flatPath := filepath.Join(dir, "world.flat")
	if err := persist.SaveFileAtomic(v2Path, ing, persist.FormatBinary); err != nil {
		return nil, fmt.Errorf("saving v2: %w", err)
	}
	if err := persist.SaveFileAtomic(flatPath, ing, persist.FormatFlat); err != nil {
		return nil, fmt.Errorf("saving flat: %w", err)
	}
	ing = nil

	den := &densityStats{}
	for _, f := range []struct {
		name string
		path string
		out  *densityFormat
	}{
		{"v2", v2Path, &den.V2},
		{"flat", flatPath, &den.Flat},
	} {
		log.Printf("loadgen: density phase (%s, %d tenants)", f.name, tenants)
		df, err := measureDensity(f.name, f.path, tenants)
		if err != nil {
			return nil, fmt.Errorf("%s density: %w", f.name, err)
		}
		*f.out = df
	}
	if den.Flat.RSSMarginalPerTenantKB > 0 {
		den.MarginalRatioV2OverFlat = den.V2.RSSMarginalPerTenantKB / den.Flat.RSSMarginalPerTenantKB
	}
	return den, nil
}

func measureDensity(format, path string, tenants int) (densityFormat, error) {
	df := densityFormat{Format: format, Tenants: tenants}
	if fi, err := os.Stat(path); err == nil {
		df.BundleBytes = fi.Size()
	}
	// Two GC cycles: the first queues finalizers from the previous format's
	// mapped snapshots, the second runs the munmaps they trigger, so the
	// baseline RSS is not inflated by the prior measurement.
	runtime.GC()
	runtime.GC()
	base := rssKB()
	reg := engine.NewRegistry()
	var afterFirst int64
	start := time.Now()
	for i := 0; i < tenants; i++ {
		snap, err := engine.LoadSnapshot(path)
		if err != nil {
			return df, fmt.Errorf("tenant %d: %w", i, err)
		}
		if _, err := reg.Add(fmt.Sprintf("t%d", i), path, snap); err != nil {
			return df, fmt.Errorf("tenant %d: %w", i, err)
		}
		if i == 0 {
			if s := snap.Stats(); s != nil {
				if r, ok := s["snapshotResidency"].(string); ok {
					df.Residency = r
				}
			}
			runtime.GC()
			afterFirst = rssKB()
		}
	}
	df.LoadTotalMs = float64(time.Since(start).Microseconds()) / 1000
	runtime.GC()
	after := rssKB()
	runtime.KeepAlive(reg)
	df.RSSTotalDeltaKB = max64(after-base, 0)
	df.RSSPerTenantKB = float64(df.RSSTotalDeltaKB) / float64(tenants)
	df.RSSMarginalPerTenantKB = float64(max64(after-afterFirst, 0)) / float64(tenants-1)
	return df, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// rssKB reads VmRSS from /proc/self/status; 0 where that is unavailable.
func rssKB() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				if v, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
					return v
				}
			}
		}
	}
	return 0
}

func fetchTerms(client *http.Client, addr string, n int) []string {
	resp, err := client.Get(fmt.Sprintf("%s/terms?n=%d", addr, n))
	if err != nil {
		log.Fatalf("loadgen: fetching terms: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("loadgen: /terms = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Terms []string `json:"terms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatalf("loadgen: decoding terms: %v", err)
	}
	return out.Terms
}

// postBatch issues one POST /relax/batch and decodes the positional item
// envelope; status 0 means the transport failed.
func postBatch(client *http.Client, addr string, queries []batchQuery) (time.Duration, int, []batchItemResp) {
	payload, err := json.Marshal(map[string]any{"queries": queries})
	if err != nil {
		return 0, 0, nil
	}
	start := time.Now()
	resp, err := client.Post(addr+"/relax/batch", "application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, 0, nil
	}
	defer resp.Body.Close()
	var out struct {
		Items []batchItemResp `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return time.Since(start), resp.StatusCode, nil
	}
	return time.Since(start), resp.StatusCode, out.Items
}

func parseSizes(csv string) []int {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			log.Fatalf("loadgen: bad -batch-sizes entry %q", f)
		}
		out = append(out, n)
	}
	return out
}

func timedRelax(client *http.Client, addr, term string, k int) (time.Duration, int) {
	url := fmt.Sprintf("%s/relax?term=%s&k=%d", addr, queryEscape(term), k)
	start := time.Now()
	resp, err := client.Get(url)
	if err != nil {
		return 0, 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return time.Since(start), resp.StatusCode
}

// timedRelaxNoStore is timedRelax with `Cache-Control: no-store`: the
// serving layer skips its result cache (no read, no write), so the
// measured latency is the uncached computation even on a warm server.
func timedRelaxNoStore(client *http.Client, addr, term string, k int) (time.Duration, int) {
	url := fmt.Sprintf("%s/relax?term=%s&k=%d", addr, queryEscape(term), k)
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, 0
	}
	req.Header.Set("Cache-Control", "no-store")
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return time.Since(start), resp.StatusCode
}

func fetchBody(client *http.Client, url string) string {
	resp, err := client.Get(url)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return ""
	}
	return string(body)
}

func queryEscape(s string) string {
	return strings.ReplaceAll(s, " ", "+")
}

// p99Blocks is how many arrival-order blocks the p99 spread uses.
const p99Blocks = 8

func summarize(lat []time.Duration, errs int, elapsed time.Duration) phaseStats {
	st := phaseStats{Requests: len(lat) + errs, Errors: errs}
	if len(lat) == 0 {
		return st
	}
	// Per-block p99 spread, computed before the global sort destroys
	// arrival order. Skipped when blocks would be too small for a tail
	// quantile to be anything but the block maximum.
	if bs := len(lat) / p99Blocks; bs >= 25 {
		var lo, hi float64
		for b := 0; b < p99Blocks; b++ {
			blk := append([]time.Duration(nil), lat[b*bs:(b+1)*bs]...)
			slices.Sort(blk)
			v := ms(quantile(blk, 0.99))
			if b == 0 || v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		st.P99LowMs, st.P99HighMs = lo, hi
	}
	slices.Sort(lat)
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	st.P50Ms = ms(quantile(lat, 0.50))
	st.P95Ms = ms(quantile(lat, 0.95))
	st.P99Ms = ms(quantile(lat, 0.99))
	st.MeanMs = ms(sum / time.Duration(len(lat)))
	if elapsed > 0 {
		st.Throughput = float64(len(lat)) / elapsed.Seconds()
	}
	return st
}

func quantile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// scrapeMetrics pulls the serving-layer counters loadgen reports on.
func scrapeMetrics(client *http.Client, addr string) map[string]float64 {
	return scrapeMetricsList(client, addr, []string{
		"medrelax_relax_cache_hits_total",
		"medrelax_relax_cache_misses_total",
		"medrelax_relax_cache_collapsed_total",
		"medrelax_relax_cache_bypass_total",
		"medrelax_relax_live_path_total",
		"medrelax_relax_materialized_hit_total",
		"medrelax_relax_index_path_total",
		"medrelax_http_shed_total",
		"medrelax_http_inflight",
		"medrelax_bundle_generation",
	})
}

// scrapeMetricsList pulls the named families from a Prometheus text
// endpoint, summing series that share a name+label string.
func scrapeMetricsList(client *http.Client, addr string, wanted []string) map[string]float64 {
	body := fetchBody(client, addr+"/metrics")
	out := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		name := fields[0]
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		for _, w := range wanted {
			if base == w {
				v, err := strconv.ParseFloat(fields[1], 64)
				if err == nil {
					out[name] = out[name] + v
				}
			}
		}
	}
	return out
}

func writeJSON(path string, rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeMarkdown(path string, rep *report) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# Serving benchmark (cmd/loadgen)\n\n")
	fmt.Fprintf(&b, "Generated %s against %s. %d distinct terms, zipf s=%.2f, k=%d, %d warm workers for %.0fs.\n\n",
		rep.GeneratededAt, rep.Addr, rep.Terms, rep.ZipfS, rep.K, rep.Concurrency, rep.DurationSec)
	fmt.Fprintf(&b, "## /relax latency, cold vs warm cache\n\n")
	fmt.Fprintf(&b, "| phase | requests | errors | p50 (ms) | p95 (ms) | p99 (ms) | mean (ms) | req/s |\n")
	fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---:|---:|---:|\n")
	fmt.Fprintf(&b, "| cold (sequential, empty cache) | %d | %d | %.3f | %.3f | %.3f | %.3f | %.0f |\n",
		rep.Cold.Requests, rep.Cold.Errors, rep.Cold.P50Ms, rep.Cold.P95Ms, rep.Cold.P99Ms, rep.Cold.MeanMs, rep.Cold.Throughput)
	fmt.Fprintf(&b, "| warm (zipfian, concurrent) | %d | %d | %.3f | %.3f | %.3f | %.3f | %.0f |\n\n",
		rep.Warm.Requests, rep.Warm.Errors, rep.Warm.P50Ms, rep.Warm.P95Ms, rep.Warm.P99Ms, rep.Warm.MeanMs, rep.Warm.Throughput)
	fmt.Fprintf(&b, "**Warm-cache p95 speedup: %.1fx.** Cached responses byte-identical to uncached: **%v**.\n\n",
		rep.WarmSpeedupP95, rep.ByteIdentical)
	if rep.Cold.P99HighMs > 0 {
		fmt.Fprintf(&b, "Cold p99 spread over %d arrival-order blocks: %.3f–%.3f ms.\n\n",
			p99Blocks, rep.Cold.P99LowMs, rep.Cold.P99HighMs)
	}
	if rep.ColdSweep.Requests > 0 {
		fmt.Fprintf(&b, "## Uncached path on a warm server (coldsweep, `Cache-Control: no-store`)\n\n")
		fmt.Fprintf(&b, "| requests | errors | p50 (ms) | p95 (ms) | p99 (ms) | p99 range (ms) | mean (ms) | req/s |\n")
		fmt.Fprintf(&b, "|---:|---:|---:|---:|---:|---:|---:|---:|\n")
		fmt.Fprintf(&b, "| %d | %d | %.3f | %.3f | %.3f | %.3f–%.3f | %.3f | %.0f |\n\n",
			rep.ColdSweep.Requests, rep.ColdSweep.Errors, rep.ColdSweep.P50Ms, rep.ColdSweep.P95Ms,
			rep.ColdSweep.P99Ms, rep.ColdSweep.P99LowMs, rep.ColdSweep.P99HighMs,
			rep.ColdSweep.MeanMs, rep.ColdSweep.Throughput)
		fmt.Fprintf(&b, "Every coldsweep request bypasses the result cache (no read, no write), so this measures the miss path — the offline top-k materialization and the posting-list candidate index, falling back to live traversal.\n\n")
		if rep.UncachedSpeedupP50 > 0 {
			fmt.Fprintf(&b, "**Uncached p50 %.3f ms vs %.2f ms recorded baseline: %.1fx faster.**\n\n",
				rep.ColdSweep.P50Ms, rep.UncachedBaselineP50Ms, rep.UncachedSpeedupP50)
		}
	}
	if rep.Cold.Retries > 0 || rep.Warm.Retries > 0 {
		fmt.Fprintf(&b, "Client retries (capped exponential backoff + jitter, honoring `Retry-After`): %d cold, %d warm.\n\n",
			rep.Cold.Retries, rep.Warm.Retries)
	}
	if rep.Burst.Requests > 0 {
		fmt.Fprintf(&b, "## Shed burst (%d workers, cache-busting random k)\n\n", rep.BurstWorkers)
		fmt.Fprintf(&b, "| requests | 200 OK | 429 shed | other |\n|---:|---:|---:|---:|\n")
		fmt.Fprintf(&b, "| %d | %d | %d | %d |\n\n", rep.Burst.Requests, rep.Burst.OK, rep.Burst.Shed, rep.Burst.Errors)
		fmt.Fprintf(&b, "Past the concurrency limit the server sheds with `429 + Retry-After` instead of queueing; no request waits in an unbounded queue.\n\n")
	}
	if len(rep.Batch) > 0 {
		fmt.Fprintf(&b, "## Batch relaxation (POST /relax/batch, cache-busting random k)\n\n")
		fmt.Fprintf(&b, "| batch size | batches | errors | p50 (ms) | p95 (ms) | items/s |\n|---:|---:|---:|---:|---:|---:|\n")
		for _, bs := range rep.Batch {
			fmt.Fprintf(&b, "| %d | %d | %d | %.3f | %.3f | %.0f |\n",
				bs.Size, bs.Batches, bs.Errors, bs.P50Ms, bs.P95Ms, bs.ItemsPerSec)
		}
		fmt.Fprintf(&b, "\n")
		if rep.BatchItemSpeedup > 0 {
			fmt.Fprintf(&b, "**Item throughput of the largest batch size vs one GET /relax per item: %.1fx** (loopback: per-item relaxation dominates; over a real network the batch saves one round trip per item). ", rep.BatchItemSpeedup)
		}
		fmt.Fprintf(&b, "Batch item bodies byte-identical to sequential `GET /relax`: **%v**.\n\n", rep.BatchByteIdentical)
	}
	if rep.Explain != nil {
		ex := rep.Explain
		fmt.Fprintf(&b, "## Explain mode (GET /relax?explain=true, sequential sweeps over all terms)\n\n")
		fmt.Fprintf(&b, "| pass | requests | errors | p50 (ms) | p95 (ms) | p99 (ms) | req/s |\n")
		fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---:|---:|\n")
		for _, row := range []struct {
			name string
			st   phaseStats
		}{
			{"plain, warm cache", ex.WarmPlain},
			{"explain, first pass (variant misses)", ex.FirstPassOn},
			{"explain, warm (variant hits)", ex.WarmOn},
			{"plain, uncached (`no-store`)", ex.UncachedPlain},
			{"explain, uncached (`no-store`)", ex.UncachedOn},
		} {
			fmt.Fprintf(&b, "| %s | %d | %d | %.3f | %.3f | %.3f | %.0f |\n",
				row.name, row.st.Requests, row.st.Errors, row.st.P50Ms, row.st.P95Ms, row.st.P99Ms, row.st.Throughput)
		}
		fmt.Fprintf(&b, "\n**Explain p95 overhead: %.3f ms warm, %.3f ms uncached.** ",
			ex.WarmOverheadP95Ms, ex.UncachedOverheadP95Ms)
		fmt.Fprintf(&b, "Explain responses cache under their own key; plain responses byte-identical after explain traffic: **%v** (explain fields present in explain responses: %v).\n\n",
			ex.PlainUnchanged, ex.ExplainFieldsSeen)
	}
	if len(rep.Tenants) > 0 {
		fmt.Fprintf(&b, "## Per-tenant phase (routed via /t/{name}/)\n\n")
		fmt.Fprintf(&b, "| tenant | requests | errors | p50 (ms) | p95 (ms) | req/s |\n|---|---:|---:|---:|---:|---:|\n")
		names := make([]string, 0, len(rep.Tenants))
		for name := range rep.Tenants {
			names = append(names, name)
		}
		slices.Sort(names)
		for _, name := range names {
			st := rep.Tenants[name]
			fmt.Fprintf(&b, "| %s | %d | %d | %.3f | %.3f | %.0f |\n",
				name, st.Requests, st.Errors, st.P50Ms, st.P95Ms, st.Throughput)
		}
		fmt.Fprintf(&b, "\nEach tenant has its own cache partition, admission gate, and tenant-labelled metric series; the table shows both warming independently in one process.\n\n")
	}
	if rep.Router != nil {
		rt := rep.Router
		fmt.Fprintf(&b, "## Router phase (kbrouter at %s, same zipfian mix back-to-back)\n\n", rt.Addr)
		fmt.Fprintf(&b, "| path | requests | errors | retries | p50 (ms) | p95 (ms) | p99 (ms) | req/s |\n")
		fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---:|---:|---:|\n")
		fmt.Fprintf(&b, "| direct (one replica) | %d | %d | %d | %.3f | %.3f | %.3f | %.0f |\n",
			rt.Direct.Requests, rt.Direct.Errors, rt.Direct.Retries, rt.Direct.P50Ms, rt.Direct.P95Ms, rt.Direct.P99Ms, rt.Direct.Throughput)
		fmt.Fprintf(&b, "| via kbrouter | %d | %d | %d | %.3f | %.3f | %.3f | %.0f |\n\n",
			rt.ViaRouter.Requests, rt.ViaRouter.Errors, rt.ViaRouter.Retries, rt.ViaRouter.P50Ms, rt.ViaRouter.P95Ms, rt.ViaRouter.P99Ms, rt.ViaRouter.Throughput)
		if rt.ThroughputRatio > 0 {
			fmt.Fprintf(&b, "**Routed throughput is %.2fx direct** (p95 overhead %.3f ms/request for consistent-hash placement, health tracking, and the extra hop). ",
				rt.ThroughputRatio, rt.P95OverheadMs)
		}
		fmt.Fprintf(&b, "Scatter-gather batch bytes identical to a single replica: **%v**.\n\n", rt.BatchByteIdentical)
		if len(rt.RouterMetrics) > 0 {
			fmt.Fprintf(&b, "### Router counters (kbrouter /metrics)\n\n| series | value |\n|---|---:|\n")
			keys := make([]string, 0, len(rt.RouterMetrics))
			for k := range rt.RouterMetrics {
				keys = append(keys, k)
			}
			slices.Sort(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "| `%s` | %.0f |\n", k, rt.RouterMetrics[k])
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	if rep.Trace != nil {
		tr := rep.Trace
		fmt.Fprintf(&b, "## Trace phase (explicit traceparent headers, scraped from %s/debug/traces)\n\n", tr.Addr)
		fmt.Fprintf(&b, "%d traced requests issued, %d traces recovered from the ring buffer.\n\n", tr.Requested, tr.Captured)
		if len(tr.Stages) > 0 {
			fmt.Fprintf(&b, "| stage (span) | samples | p50 (ms) | p95 (ms) |\n|---|---:|---:|---:|\n")
			for _, st := range tr.Stages {
				fmt.Fprintf(&b, "| `%s` | %d | %.3f | %.3f |\n", st.Span, st.Count, st.P50Ms, st.P95Ms)
			}
			fmt.Fprintf(&b, "\nRouter stages appear only when the phase targets kbrouter; replica-side spans (admission, cache probe, relax kernel) ride back to the router inside the span backhaul header and land in the same trace.\n\n")
		}
	}
	if rep.Density != nil {
		d := rep.Density
		fmt.Fprintf(&b, "## Multi-tenant density (in-process, %d tenants per format)\n\n", d.V2.Tenants)
		fmt.Fprintf(&b, "| format | residency | bundle bytes | load total (ms) | RSS delta (KB) | RSS/tenant (KB) | marginal RSS/tenant (KB) |\n")
		fmt.Fprintf(&b, "|---|---|---:|---:|---:|---:|---:|\n")
		for _, df := range []densityFormat{d.V2, d.Flat} {
			fmt.Fprintf(&b, "| %s | %s | %d | %.1f | %d | %.0f | %.0f |\n",
				df.Format, df.Residency, df.BundleBytes, df.LoadTotalMs,
				df.RSSTotalDeltaKB, df.RSSPerTenantKB, df.RSSMarginalPerTenantKB)
		}
		fmt.Fprintf(&b, "\n")
		if d.MarginalRatioV2OverFlat > 0 {
			fmt.Fprintf(&b, "**Marginal tenant cost: v2 is %.1fx the flat mapping.** ", d.MarginalRatioV2OverFlat)
		}
		fmt.Fprintf(&b, "Each v2 tenant decodes a private heap copy; flat tenants map the same file, so the kernel shares its pages and adding a tenant costs little beyond bookkeeping — multi-tenant RSS stays sublinear in tenant count.\n\n")
	}
	if len(rep.ServerMetrics) > 0 {
		fmt.Fprintf(&b, "## Server-side counters (/metrics)\n\n| series | value |\n|---|---:|\n")
		keys := make([]string, 0, len(rep.ServerMetrics))
		for k := range rep.ServerMetrics {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "| `%s` | %.0f |\n", k, rep.ServerMetrics[k])
		}
		fmt.Fprintf(&b, "\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
