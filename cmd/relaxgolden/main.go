// Command relaxgolden pins the ranked relaxation output of the default
// system for a deterministic query set: each query's full ranked candidate
// list (and its k=10 prefix) is canonically serialized and SHA-256 hashed.
// The summaries are committed as testdata/relax_golden.json and asserted by
// TestRelaxMatchesGolden, so any change to concept order, score bits, hop
// counts or instance lists across performance refactors fails the test.
//
// Usage:
//
//	go run ./cmd/relaxgolden -out testdata/relax_golden.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"medrelax"
	"medrelax/internal/eval"
)

func main() {
	out := flag.String("out", "testdata/relax_golden.json", "output path")
	n := flag.Int("n", 40, "number of queries")
	flag.Parse()

	sys, err := medrelax.Build(medrelax.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "relaxgolden:", err)
		os.Exit(1)
	}
	entries := medrelax.GoldenEntries(sys, eval.SelectQueries(sys.Med, sys.Oracle, *n))
	summaries, err := medrelax.Summarize(entries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "relaxgolden:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(summaries, "", " ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "relaxgolden:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "relaxgolden:", err)
		os.Exit(1)
	}
	fmt.Printf("relaxgolden: wrote %d summaries to %s\n", len(summaries), *out)
}
