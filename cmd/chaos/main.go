// Command chaos is the crash-safety harness: it boots the same serving
// stack kbserver runs (engine.LoadSnapshot -> serving.Engine -> server API),
// captures golden /relax responses, then drives concurrent retrying
// traffic while injecting backend faults, corrupting the bundle on disk
// mid-reload, and tearing writes — and asserts the invariants the fault
// layer promises:
//
//   - zero panics anywhere in the handler stack
//   - no /relax response is ever a 500 (injected faults must map to a
//     503 with Retry-After, timeouts to 504 — never an opaque error)
//   - every 200 body is byte-identical to the golden capture (no torn,
//     mixed-generation, or partially-relaxed answer escapes)
//   - a corrupt bundle never becomes the serving generation: the reload
//     fails, medrelax_reload_failures_total rises, the generation gauge
//     does not
//   - a torn SaveFileAtomic leaves the previous bundle intact and no
//     temp litter
//   - once faults clear, every term again serves byte-identical results
//
// The run is deterministic for a fixed -seed. A JSON report is written
// to -out; the exit status is non-zero iff any invariant was violated.
//
// Usage:
//
//	chaos -seed 42 -phase 1500ms -out chaos_report.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/engine"
	"medrelax/internal/fault"
	"medrelax/internal/medkb"
	"medrelax/internal/persist"
	"medrelax/internal/retry"
	"medrelax/internal/server"
	"medrelax/internal/serving"
	"medrelax/internal/synthkb"
)

func main() {
	var (
		seed    = flag.Int64("seed", 42, "seed for world generation, fault schedules, and traffic")
		phase   = flag.Duration("phase", 1500*time.Millisecond, "duration of each traffic phase")
		workers = flag.Int("workers", 6, "concurrent traffic workers per phase")
		k       = flag.Int("k", 5, "results per /relax request")
		out     = flag.String("out", "chaos_report.json", "JSON run report path")
		dir     = flag.String("dir", "", "working directory for the bundle (default: a temp dir)")
		rtr     = flag.Bool("router", false, "run the distributed-tier drill instead: 3 replicas + kbrouter, kill/restart one replica under traffic")
	)
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	if *rtr {
		if n := runRouterDrill(*seed, *phase, *workers, *k, *out); n > 0 {
			os.Exit(1)
		}
		return
	}

	h, err := newHarness(*seed, *phase, *workers, *k, *dir)
	if err != nil {
		log.Fatalf("chaos: setup: %v", err)
	}
	defer h.cleanup()

	h.run()

	if err := h.writeReport(*out); err != nil {
		log.Fatalf("chaos: writing report: %v", err)
	}
	if n := len(h.report.Violations); n > 0 {
		log.Printf("chaos: FAIL — %d invariant violation(s):", n)
		for _, v := range h.report.Violations {
			log.Printf("chaos:   - %s", v)
		}
		os.Exit(1)
	}
	log.Printf("chaos: PASS — %d requests, %d retries, %d reload failures (all expected), 0 panics, 0 mismatches",
		h.report.Requests, h.report.Retries, h.report.ReloadsFailed)
}

// phaseReport records one traffic phase's outcome for the run report.
type phaseReport struct {
	Name     string                     `json:"name"`
	Faults   string                     `json:"faults,omitempty"`
	Requests int64                      `json:"requests"`
	Retries  int64                      `json:"retries"`
	ByStatus map[string]int             `json:"byStatus"`
	Sites    map[string]fault.SiteStats `json:"sites,omitempty"`
}

// report is the JSON artifact summarizing the whole run.
type report struct {
	Seed          int64         `json:"seed"`
	Terms         int           `json:"terms"`
	Phases        []phaseReport `json:"phases"`
	Requests      int64         `json:"requests"`
	Retries       int64         `json:"retries"`
	ReloadsOK     int           `json:"reloadsOk"`
	ReloadsFailed int           `json:"reloadsFailed"`
	Generation    int           `json:"generation"`
	Panics        int64         `json:"panics"`
	Mismatches    int64         `json:"mismatches"`
	Violations    []string      `json:"violations"`
}

type harness struct {
	seed    int64
	phase   time.Duration
	workers int
	k       int

	dir       string
	ownDir    bool // we created dir, remove it on cleanup
	bundle    string
	goodBytes []byte

	engine *serving.Engine
	srv    *http.Server
	lis    net.Listener
	base   string
	client *http.Client
	panics atomic.Int64

	terms  []string
	golden map[string][]byte

	mu          sync.Mutex
	report      report
	expectedGen int
}

func (h *harness) violatef(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	log.Printf("chaos: VIOLATION: %s", msg)
	h.mu.Lock()
	h.report.Violations = append(h.report.Violations, msg)
	h.mu.Unlock()
}

// newHarness builds a small deterministic world, publishes it as a binary
// bundle via the crash-safe writer, and boots the production serving
// stack on a loopback listener.
func newHarness(seed int64, phase time.Duration, workers, k int, dir string) (*harness, error) {
	h := &harness{
		seed:        seed,
		phase:       phase,
		workers:     workers,
		k:           k,
		dir:         dir,
		golden:      map[string][]byte{},
		expectedGen: 1,
	}
	h.report.Seed = seed
	if h.dir == "" {
		d, err := os.MkdirTemp("", "chaos-*")
		if err != nil {
			return nil, err
		}
		h.dir, h.ownDir = d, true
	}
	h.bundle = filepath.Join(h.dir, "bundle.bin")

	ing, err := buildIngestion(seed)
	if err != nil {
		return nil, err
	}
	if err := persist.SaveFileAtomic(h.bundle, ing, persist.FormatBinary); err != nil {
		return nil, err
	}
	if h.goodBytes, err = os.ReadFile(h.bundle); err != nil {
		return nil, err
	}
	log.Printf("chaos: bundle published: %s (%d bytes)", h.bundle, len(h.goodBytes))

	backend, err := engine.LoadSnapshot(h.bundle)
	if err != nil {
		return nil, err
	}
	opts := serving.DefaultOptions()
	// A tiny cache with a short TTL so traffic actually reaches the
	// backend fault site instead of being absorbed by cache hits, plus a
	// stale window so the degraded path gets exercised too.
	opts.CacheCapacity = 8
	opts.CacheTTL = 75 * time.Millisecond
	opts.CacheStaleWindow = 200 * time.Millisecond
	opts.MaxConcurrent = 64
	opts.RelaxTimeout = 2 * time.Second
	opts.SlowQuery = 0
	bundle := h.bundle
	opts.Loader = func() (server.Backend, error) {
		snap, err := engine.LoadSnapshot(bundle)
		if err != nil {
			return nil, err
		}
		return snap, nil
	}
	h.engine = serving.NewEngine(backend, opts)

	api := server.New(h.engine)
	handler := h.recoverPanics(h.engine.Handler(api.Handler()))
	h.lis, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h.srv = &http.Server{Handler: handler}
	go h.srv.Serve(h.lis)
	h.base = "http://" + h.lis.Addr().String()
	h.client = &http.Client{Timeout: 10 * time.Second}
	log.Printf("chaos: serving stack up at %s", h.base)
	return h, nil
}

// buildIngestion generates a compact synthetic world and ingests it with
// the exact-match mapper — no embedding training, so the harness boots in
// well under a second and stays CI-friendly.
func buildIngestion(seed int64) (*core.Ingestion, error) {
	world, err := synthkb.Generate(synthkb.Config{Seed: seed, ConditionsPerPair: 2})
	if err != nil {
		return nil, err
	}
	med, err := medkb.Generate(world, medkb.Config{Seed: seed + 1, Drugs: 25})
	if err != nil {
		return nil, err
	}
	corp := medkb.BuildCorpus(world, med, medkb.CorpusConfig{Seed: seed + 2})
	return core.Ingest(med.Ontology, med.Store, world.Graph, corp, exactMapper{world.Graph}, core.IngestOptions{})
}

type exactMapper struct{ g *eks.Graph }

func (m exactMapper) Name() string { return "EXACT" }
func (m exactMapper) Map(name string) (eks.ConceptID, bool) {
	ids := m.g.LookupName(name)
	if len(ids) == 0 {
		return 0, false
	}
	return ids[0], true
}

// recoverPanics converts a handler panic into a 500 and counts it; the
// count must end the run at zero.
func (h *harness) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				h.panics.Add(1)
				log.Printf("chaos: PANIC serving %s: %v", r.URL.Path, v)
				http.Error(w, "panic", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (h *harness) cleanup() {
	h.srv.Close()
	fault.SetDefault(nil)
	if h.ownDir {
		os.RemoveAll(h.dir)
	}
}

func (h *harness) run() {
	if err := h.captureGolden(); err != nil {
		h.violatef("golden capture: %v", err)
		return
	}

	// Phase 1: transient backend errors under concurrent reload chaos.
	// Clients retry on 503; corrupt bundles are pushed and reloaded and
	// must be rejected while the live generation keeps answering.
	errSpec := fmt.Sprintf("backend.relax:error,rate=0.15,seed=%d,msg=chaos backend fault", h.seed)
	stop := make(chan struct{})
	var storm sync.WaitGroup
	storm.Add(1)
	go func() { defer storm.Done(); h.reloadStorm(stop) }()
	h.trafficPhase("backend-errors", errSpec)
	close(stop)
	storm.Wait()

	// Phase 2: injected latency. Slower answers are fine; wrong or
	// internal-error answers are not.
	latSpec := fmt.Sprintf("backend.relax:latency,delay=20ms,rate=0.5,seed=%d", h.seed+1)
	h.trafficPhase("backend-latency", latSpec)

	// Phase 3: torn writes. Publishing a new bundle through a torn
	// writer — in either on-disk encoding — must fail without disturbing
	// the live file or leaving temp litter, and the live file must still
	// load.
	h.tornWritePhase()

	// Phase 4: hot-swap onto the zero-copy flat encoding, so recovery
	// traffic and the golden checks serve from a memory-mapped bundle.
	h.flatSwapPhase()

	// Phase 5: faults cleared — every term must serve byte-identical
	// golden results again (now from the mapped bundle), and the metrics
	// must account for exactly the chaos we caused.
	fault.SetDefault(nil)
	h.trafficPhase("recovery", "")
	h.finalChecks()
}

// captureGolden records the byte-exact /relax response for every term
// before any fault is armed.
func (h *harness) captureGolden() error {
	body, status, err := h.get("/terms?n=25")
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("GET /terms: status %d, err %v", status, err)
	}
	var tr struct {
		Terms []string `json:"terms"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		return err
	}
	if len(tr.Terms) == 0 {
		return fmt.Errorf("no relaxable terms in bundle")
	}
	h.terms = tr.Terms
	h.report.Terms = len(tr.Terms)
	for _, term := range h.terms {
		b, status, err := h.get(h.relaxPath(term))
		if err != nil || status != http.StatusOK {
			return fmt.Errorf("golden GET /relax?term=%q: status %d, err %v", term, status, err)
		}
		h.golden[term] = b
	}
	log.Printf("chaos: golden capture: %d terms", len(h.terms))
	return nil
}

func (h *harness) relaxPath(term string) string {
	return "/relax?term=" + strings.ReplaceAll(term, " ", "+") + "&k=" + strconv.Itoa(h.k)
}

func (h *harness) get(path string) ([]byte, int, error) {
	resp, err := h.client.Get(h.base + path)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return b, resp.StatusCode, err
}

// trafficPhase arms the given fault spec (empty = none) and hammers
// /relax from h.workers goroutines for h.phase, with loadgen-style
// retries on 429/503. Every 200 must match golden byte-for-byte; a 500
// anywhere is a violation.
func (h *harness) trafficPhase(name, spec string) {
	var reg *fault.Registry
	if spec != "" {
		var err error
		if reg, err = fault.Parse(spec); err != nil {
			h.violatef("phase %s: bad fault spec: %v", name, err)
			return
		}
	}
	fault.SetDefault(reg)
	log.Printf("chaos: phase %s: faults=%q", name, spec)

	var (
		requests, retries atomic.Int64
		byStatus          sync.Map // int -> *atomic.Int64
		wg                sync.WaitGroup
	)
	count := func(status int) {
		c, _ := byStatus.LoadOrStore(status, new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
	}
	deadline := time.Now().Add(h.phase)
	for w := 0; w < h.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(h.seed + int64(w)*1009))
			for time.Now().Before(deadline) {
				term := h.terms[rng.Intn(len(h.terms))]
				body, status, attempts, err := h.relaxRetry(term, rng)
				requests.Add(1)
				retries.Add(int64(attempts - 1))
				if err != nil {
					h.violatef("phase %s: transport error for %q: %v", name, term, err)
					continue
				}
				count(status)
				switch status {
				case http.StatusOK:
					if string(body) != string(h.golden[term]) {
						h.mu.Lock()
						h.report.Mismatches++
						h.mu.Unlock()
						h.violatef("phase %s: response for %q differs from golden", name, term)
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable,
					http.StatusGatewayTimeout:
					// Tolerated: retries exhausted under injected load.
				default:
					h.violatef("phase %s: unexpected status %d for %q", name, status, term)
				}
			}
		}(w)
	}
	wg.Wait()

	pr := phaseReport{Name: name, Faults: spec, Requests: requests.Load(),
		Retries: retries.Load(), ByStatus: map[string]int{}, Sites: reg.Snapshot()}
	byStatus.Range(func(k, v any) bool {
		pr.ByStatus[strconv.Itoa(k.(int))] = int(v.(*atomic.Int64).Load())
		return true
	})
	h.mu.Lock()
	h.report.Phases = append(h.report.Phases, pr)
	h.report.Requests += pr.Requests
	h.report.Retries += pr.Retries
	h.mu.Unlock()
	log.Printf("chaos: phase %s: %d requests, %d retries, statuses %v", name, pr.Requests, pr.Retries, pr.ByStatus)
}

// relaxRetry fetches one term with capped exponential backoff on 429/503,
// honoring Retry-After the way a well-behaved client (cmd/loadgen) does —
// both now ride the shared internal/retry policy. Returns the final body,
// status, and total attempts.
func (h *harness) relaxRetry(term string, rng *rand.Rand) ([]byte, int, int, error) {
	pol := retry.Policy{MaxRetries: 3, Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}
	path := h.relaxPath(term)
	var (
		body   []byte
		status int
		err    error
	)
	for attempt := 0; ; attempt++ {
		var resp *http.Response
		resp, err = h.client.Get(h.base + path)
		if err == nil {
			body, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			status = resp.StatusCode
		}
		retryable := err != nil || retry.RetryableStatus(status)
		if !retryable || attempt == pol.MaxRetries {
			return body, status, attempt + 1, err
		}
		var hinted time.Duration
		if err == nil {
			// Cap the honored hint so a 1s server hint doesn't stall the
			// whole phase; production clients would sleep it out.
			hinted = min(retry.After(resp.Header), 50*time.Millisecond)
		}
		time.Sleep(pol.Wait(attempt, hinted, rng))
	}
}

// reloadStorm alternates corrupt and good bundle publishes, poking
// /admin/reload after each. Corrupt publishes must be rejected (reload
// fails, generation unchanged); good publishes must swap generations.
func (h *harness) reloadStorm(stop <-chan struct{}) {
	corruptions := []struct {
		name string
		data func() []byte
	}{
		{"truncated", func() []byte { return h.goodBytes[:len(h.goodBytes)*3/5] }},
		{"bitflip", func() []byte {
			b := append([]byte(nil), h.goodBytes...)
			b[len(b)/2] ^= 0x40
			return b
		}},
		{"empty", func() []byte { return nil }},
		{"garbage", func() []byte { return []byte("this is not a bundle\n") }},
	}
	tick := time.NewTicker(150 * time.Millisecond)
	defer tick.Stop()
	for i := 0; ; i++ {
		select {
		case <-stop:
			// Always leave the good bundle on disk for later phases.
			if err := h.publish(h.goodBytes); err != nil {
				h.violatef("reload storm: restoring good bundle: %v", err)
			}
			return
		case <-tick.C:
		}
		c := corruptions[i%len(corruptions)]
		if err := h.publish(c.data()); err != nil {
			h.violatef("reload storm: publishing %s bundle: %v", c.name, err)
			continue
		}
		if status, gen := h.adminReload(); status == http.StatusOK {
			h.violatef("reload storm: %s bundle was accepted (generation %d)", c.name, gen)
		} else {
			h.mu.Lock()
			h.report.ReloadsFailed++
			h.mu.Unlock()
		}
		if err := h.publish(h.goodBytes); err != nil {
			h.violatef("reload storm: restoring good bundle: %v", err)
			continue
		}
		if status, gen := h.adminReload(); status != http.StatusOK {
			h.violatef("reload storm: good bundle rejected with status %d", status)
		} else {
			h.mu.Lock()
			h.expectedGen++
			want := h.expectedGen
			h.report.ReloadsOK++
			h.mu.Unlock()
			if gen != want {
				h.violatef("reload storm: generation %d after good reload, want %d", gen, want)
			}
		}
	}
}

// publish atomically replaces the bundle file (temp + rename), simulating
// an operator pushing a new bundle next to a live server.
func (h *harness) publish(data []byte) error {
	tmp := h.bundle + ".push"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, h.bundle)
}

// adminReload POSTs /admin/reload and returns the status plus the
// reported generation (0 when the reload failed).
func (h *harness) adminReload() (int, int) {
	resp, err := h.client.Post(h.base+"/admin/reload", "application/json", nil)
	if err != nil {
		h.violatef("POST /admin/reload: %v", err)
		return 0, 0
	}
	defer resp.Body.Close()
	var body struct {
		Generation int `json:"generation"`
	}
	json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, body.Generation
}

// tornWritePhase arms a torn-write fault and attempts to publish a fresh
// bundle through persist.SaveFileAtomic: the save must fail, the live
// bundle must be untouched and still loadable, and no temp file may
// survive.
func (h *harness) tornWritePhase() {
	ing, err := buildIngestion(h.seed)
	if err != nil {
		h.violatef("torn-write phase: rebuilding ingestion: %v", err)
		return
	}
	// Both on-disk encodings go through the same crash-safe writer; a torn
	// write must leave the live bundle untouched either way — including the
	// flat (v4) encoding, whose reader maps the published file directly.
	formats := []struct {
		name   string
		format persist.Format
	}{
		{"binary", persist.FormatBinary},
		{"flat", persist.FormatFlat},
	}
	for i, f := range formats {
		name := "torn-write-" + f.name
		spec := fmt.Sprintf("persist.write:torn,bytes=%d,count=1,seed=%d", len(h.goodBytes)/3, h.seed+2+int64(i))
		reg, err := fault.Parse(spec)
		if err != nil {
			h.violatef("%s phase: bad spec: %v", name, err)
			return
		}
		fault.SetDefault(reg)
		log.Printf("chaos: phase %s: faults=%q", name, spec)

		if err := persist.SaveFileAtomic(h.bundle, ing, f.format); err == nil {
			h.violatef("%s phase: SaveFileAtomic succeeded through a torn writer", name)
		}
		fault.SetDefault(nil)

		if got, err := os.ReadFile(h.bundle); err != nil {
			h.violatef("%s phase: live bundle unreadable after torn save: %v", name, err)
		} else if string(got) != string(h.goodBytes) {
			h.violatef("%s phase: live bundle changed by a failed save", name)
		}
		if litter, _ := filepath.Glob(filepath.Join(h.dir, ".bundle-*.tmp")); len(litter) > 0 {
			h.violatef("%s phase: temp litter left behind: %v", name, litter)
		}
		if status, _ := h.adminReload(); status != http.StatusOK {
			h.violatef("%s phase: reload of untouched bundle failed with status %d", name, status)
		} else {
			h.mu.Lock()
			h.expectedGen++
			h.report.ReloadsOK++
			h.mu.Unlock()
		}
		h.mu.Lock()
		h.report.Phases = append(h.report.Phases, phaseReport{Name: name, Faults: spec, Sites: reg.Snapshot()})
		h.mu.Unlock()
	}
}

// flatSwapPhase republishes the world as a flat (v4) bundle and hot-reloads
// onto it, so the recovery phase and the final golden byte-identity checks
// run against a memory-mapped snapshot instead of the heap-decoded one.
func (h *harness) flatSwapPhase() {
	ing, err := buildIngestion(h.seed)
	if err != nil {
		h.violatef("flat-swap phase: rebuilding ingestion: %v", err)
		return
	}
	if err := persist.SaveFileAtomic(h.bundle, ing, persist.FormatFlat); err != nil {
		h.violatef("flat-swap phase: saving flat bundle: %v", err)
		return
	}
	log.Printf("chaos: phase flat-swap: bundle republished as flat v4")
	if status, gen := h.adminReload(); status != http.StatusOK {
		h.violatef("flat-swap phase: reload of flat bundle failed with status %d", status)
	} else {
		h.mu.Lock()
		h.expectedGen++
		want := h.expectedGen
		h.report.ReloadsOK++
		h.mu.Unlock()
		if gen != want {
			h.violatef("flat-swap phase: generation %d after flat reload, want %d", gen, want)
		}
	}
	h.mu.Lock()
	h.report.Phases = append(h.report.Phases, phaseReport{Name: "flat-swap"})
	h.mu.Unlock()
}

// finalChecks verifies golden byte-identity for every term and that the
// server's own metrics agree with the chaos we inflicted.
func (h *harness) finalChecks() {
	for _, term := range h.terms {
		body, status, err := h.get(h.relaxPath(term))
		if err != nil || status != http.StatusOK {
			h.violatef("final: GET /relax?term=%q: status %d, err %v", term, status, err)
			continue
		}
		if string(body) != string(h.golden[term]) {
			h.report.Mismatches++
			h.violatef("final: response for %q differs from golden after faults cleared", term)
		}
	}

	h.report.Panics = h.panics.Load()
	if h.report.Panics != 0 {
		h.violatef("final: %d handler panic(s)", h.report.Panics)
	}

	gen, reloadFails, err := h.scrapeMetrics()
	if err != nil {
		h.violatef("final: scraping /metrics: %v", err)
		return
	}
	h.report.Generation = gen
	if gen != h.expectedGen {
		h.violatef("final: bundle generation %d, want %d (a rejected reload must not advance it)", gen, h.expectedGen)
	}
	if reloadFails != h.report.ReloadsFailed {
		h.violatef("final: medrelax_reload_failures_total = %d, want %d", reloadFails, h.report.ReloadsFailed)
	}
	log.Printf("chaos: final: generation %d, %d ok / %d failed reloads, %d panics",
		gen, h.report.ReloadsOK, h.report.ReloadsFailed, h.report.Panics)
}

// scrapeMetrics pulls the generation gauge and reload-failure counter out
// of the Prometheus text exposition.
func (h *harness) scrapeMetrics() (gen, reloadFails int, err error) {
	body, status, err := h.get("/metrics")
	if err != nil || status != http.StatusOK {
		return 0, 0, fmt.Errorf("status %d, err %v", status, err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		switch fields[0] {
		case "medrelax_bundle_generation":
			gen, _ = strconv.Atoi(fields[1])
		case "medrelax_reload_failures_total":
			reloadFails, _ = strconv.Atoi(fields[1])
		}
	}
	return gen, reloadFails, nil
}

func (h *harness) writeReport(path string) error {
	h.report.Panics = h.panics.Load()
	b, err := json.MarshalIndent(h.report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}
