// The -router drill is the distributed-tier counterpart to the main
// chaos run: it boots three full replica serving stacks plus an
// in-process kbrouter, captures golden answers from a single replica,
// then drives concurrent traffic THROUGH the router while killing one
// replica mid-phase and restarting it on the same address. Invariants:
//
//   - every 200 through the router is byte-identical to the
//     single-replica golden capture — failover must never surface a
//     torn or divergent answer
//   - zero non-shed errors: the only tolerated non-200 statuses are
//     429/503 admission sheds; a request failing because a replica
//     died means failover or retry did not do its job
//   - the killed replica is marked unhealthy by the prober, traffic
//     keeps flowing on the survivors, and after restart the replica is
//     restored and serves golden bytes again
//   - a scatter-gather batch through the router stays byte-identical
//     to the direct run after the kill/restart cycle
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"medrelax/internal/engine"
	"medrelax/internal/retry"
	"medrelax/internal/router"
	"medrelax/internal/server"
	"medrelax/internal/serving"
	"medrelax/internal/trace"
)

// routerReport is the JSON artifact for a -router run.
type routerReport struct {
	Seed       int64         `json:"seed"`
	Replicas   []string      `json:"replicas"`
	Terms      int           `json:"terms"`
	Phases     []phaseReport `json:"phases"`
	Requests   int64         `json:"requests"`
	Retries    int64         `json:"retries"`
	Shed       int64         `json:"shed"`
	Kills      int           `json:"kills"`
	Restarts   int           `json:"restarts"`
	Mismatches int64         `json:"mismatches"`
	Traces     uint64        `json:"tracesCaptured"`
	Violations []string      `json:"violations"`
}

// replicaProc is one replica "process": a serving stack on a loopback
// listener that can be killed and later restarted on the same address,
// the in-process stand-in for an operator bouncing a kbserver.
type replicaProc struct {
	addr      string
	mkHandler func() http.Handler

	mu  sync.Mutex
	srv *http.Server
}

func (p *replicaProc) start() error {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	p.addr = lis.Addr().String()
	p.serveOn(lis)
	return nil
}

func (p *replicaProc) serveOn(lis net.Listener) {
	srv := &http.Server{Handler: p.mkHandler()}
	p.mu.Lock()
	p.srv = srv
	p.mu.Unlock()
	go srv.Serve(lis)
}

// kill closes the listener and every open connection, so in-flight
// requests fail at the router the way a SIGKILLed replica's would.
func (p *replicaProc) kill() {
	p.mu.Lock()
	srv := p.srv
	p.srv = nil
	p.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// restart rebinds the replica's original address (the OS may hold the
// port briefly, so retry) and serves a fresh handler on it.
func (p *replicaProc) restart() error {
	var lastErr error
	for i := 0; i < 50; i++ {
		lis, err := net.Listen("tcp", p.addr)
		if err == nil {
			p.serveOn(lis)
			return nil
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	return lastErr
}

type routerDrill struct {
	seed    int64
	phase   time.Duration
	workers int
	k       int

	replicas  []*replicaProc
	rt        *router.Router
	routerSrv *http.Server
	base      string // router base URL — all traffic goes through here
	direct    string // replica 0, golden capture only
	client    *http.Client

	terms       []string
	golden      map[string][]byte
	batchBody   []byte
	batchGolden []byte
	traceRec    *trace.Recorder

	mu     sync.Mutex
	report routerReport
}

func (d *routerDrill) violatef(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	log.Printf("chaos: VIOLATION: %s", msg)
	d.mu.Lock()
	d.report.Violations = append(d.report.Violations, msg)
	d.mu.Unlock()
}

// newRouterDrill builds one shared snapshot, boots three replica stacks
// over it (admission and caches stay per-replica, as in production),
// and fronts them with a router tuned for fast failure detection so the
// drill fits in a CI-friendly wall clock.
func newRouterDrill(seed int64, phase time.Duration, workers, k int) (*routerDrill, error) {
	d := &routerDrill{
		seed:    seed,
		phase:   phase,
		workers: workers,
		k:       k,
		golden:  map[string][]byte{},
		client:  &http.Client{Timeout: 10 * time.Second},
	}
	d.report.Seed = seed

	ing, err := buildIngestion(seed)
	if err != nil {
		return nil, err
	}
	snap := engine.New(ing, engine.Config{})
	// Replicas join traces the router starts (no self-sampling), the same
	// split a production fleet runs: sampling decisions live at the edge.
	replicaTracer := trace.NewTracer("kbserver", 0, trace.NewRecorder(64, 8))
	mkHandler := func() http.Handler {
		sopts := serving.DefaultOptions()
		sopts.Tracer = replicaTracer
		eng := serving.NewEngine(snap, sopts)
		return eng.Handler(server.New(eng).Handler())
	}
	addrs := make([]string, 3)
	for i := range addrs {
		p := &replicaProc{mkHandler: mkHandler}
		if err := p.start(); err != nil {
			return nil, err
		}
		d.replicas = append(d.replicas, p)
		addrs[i] = p.addr
	}
	d.report.Replicas = addrs
	d.direct = "http://" + addrs[0]

	opts := router.DefaultOptions()
	opts.Replicas = addrs
	opts.ProbeInterval = 50 * time.Millisecond
	opts.ProbeTimeout = 150 * time.Millisecond
	opts.FailAfter = 2
	opts.Retry = retry.Policy{MaxRetries: 3, Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond}
	d.traceRec = trace.NewRecorder(64, 8)
	opts.Tracer = trace.NewTracer("kbrouter", 8, d.traceRec)
	d.rt = router.New(opts)
	d.rt.Start()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	d.routerSrv = &http.Server{Handler: d.rt.Handler()}
	go d.routerSrv.Serve(lis)
	d.base = "http://" + lis.Addr().String()
	log.Printf("chaos: router drill up: router %s fronting %v", d.base, addrs)
	return d, nil
}

func (d *routerDrill) cleanup() {
	d.routerSrv.Close()
	d.rt.Stop()
	for _, p := range d.replicas {
		p.kill()
	}
}

func (d *routerDrill) run() {
	if err := d.captureGolden(); err != nil {
		d.violatef("golden capture: %v", err)
		return
	}

	// Phase 1: steady state — every routed answer must match golden.
	d.trafficPhase("router-steady", d.phase, nil)

	// Phase 2: kill one replica mid-phase, let the survivors absorb the
	// traffic, then restart it on the same address. The traffic never
	// pauses; failover and the active prober have to hide the bounce.
	victim := d.replicas[1]
	d.trafficPhase("router-kill-restart", 3*d.phase, func() {
		time.Sleep(d.phase / 2)
		log.Printf("chaos: killing replica %s", victim.addr)
		victim.kill()
		d.mu.Lock()
		d.report.Kills++
		d.mu.Unlock()

		deadline := time.Now().Add(2 * time.Second)
		for d.rt.ReplicaHealthy(victim.addr) && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if d.rt.ReplicaHealthy(victim.addr) {
			d.violatef("killed replica %s never marked unhealthy", victim.addr)
		} else {
			log.Printf("chaos: replica %s marked unhealthy", victim.addr)
		}

		time.Sleep(d.phase)
		if err := victim.restart(); err != nil {
			d.violatef("restarting replica %s: %v", victim.addr, err)
			return
		}
		d.mu.Lock()
		d.report.Restarts++
		d.mu.Unlock()
		deadline = time.Now().Add(5 * time.Second)
		for !d.rt.ReplicaHealthy(victim.addr) && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
		}
		if !d.rt.ReplicaHealthy(victim.addr) {
			d.violatef("restarted replica %s never marked healthy again", victim.addr)
		} else {
			log.Printf("chaos: replica %s restored", victim.addr)
		}
	})

	d.finalChecks(victim.addr)
}

// captureGolden records byte-exact single-replica answers — per term and
// for one scatter-gather batch — before any traffic flows.
func (d *routerDrill) captureGolden() error {
	body, status, err := d.get(d.direct + "/terms?n=25")
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("GET /terms: status %d, err %v", status, err)
	}
	var tr struct {
		Terms []string `json:"terms"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		return err
	}
	if len(tr.Terms) == 0 {
		return fmt.Errorf("no relaxable terms in bundle")
	}
	d.terms = tr.Terms
	d.report.Terms = len(tr.Terms)
	for _, term := range d.terms {
		b, status, err := d.get(d.direct + d.relaxPath(term))
		if err != nil || status != http.StatusOK {
			return fmt.Errorf("golden GET /relax?term=%q: status %d, err %v", term, status, err)
		}
		d.golden[term] = b
	}

	type item struct {
		Term string `json:"term"`
		K    int    `json:"k"`
	}
	items := make([]item, 0, len(d.terms))
	for _, term := range d.terms {
		items = append(items, item{Term: term, K: d.k})
	}
	if d.batchBody, err = json.Marshal(map[string]any{"queries": items}); err != nil {
		return err
	}
	b, status, err := d.post(d.direct+"/relax/batch", d.batchBody)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("golden POST /relax/batch: status %d, err %v", status, err)
	}
	d.batchGolden = b
	log.Printf("chaos: golden capture: %d terms + %d-item batch", len(d.terms), len(items))
	return nil
}

func (d *routerDrill) relaxPath(term string) string {
	return "/relax?term=" + strings.ReplaceAll(term, " ", "+") + "&k=" + strconv.Itoa(d.k)
}

func (d *routerDrill) get(url string) ([]byte, int, error) {
	resp, err := d.client.Get(url)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return b, resp.StatusCode, err
}

func (d *routerDrill) post(url string, body []byte) ([]byte, int, error) {
	resp, err := d.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return b, resp.StatusCode, err
}

// trafficPhase hammers /relax through the router from d.workers
// goroutines for dur, running the optional fault script concurrently.
// Every 200 must match golden; 429/503 count as sheds; anything else —
// including a transport error to the router — is a violation.
func (d *routerDrill) trafficPhase(name string, dur time.Duration, script func()) {
	log.Printf("chaos: phase %s (%s)", name, dur)
	var (
		requests, retries, shed atomic.Int64
		byStatus                sync.Map
		wg, scriptWG            sync.WaitGroup
	)
	count := func(status int) {
		c, _ := byStatus.LoadOrStore(status, new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
	}
	if script != nil {
		scriptWG.Add(1)
		go func() { defer scriptWG.Done(); script() }()
	}
	deadline := time.Now().Add(dur)
	for w := 0; w < d.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(d.seed + int64(w)*1009))
			for time.Now().Before(deadline) {
				term := d.terms[rng.Intn(len(d.terms))]
				body, status, attempts, err := d.relaxRetry(term, rng)
				requests.Add(1)
				retries.Add(int64(attempts - 1))
				if err != nil {
					d.violatef("phase %s: transport error for %q: %v", name, term, err)
					continue
				}
				count(status)
				switch status {
				case http.StatusOK:
					if !bytes.Equal(body, d.golden[term]) {
						d.mu.Lock()
						d.report.Mismatches++
						d.mu.Unlock()
						d.violatef("phase %s: routed response for %q differs from golden", name, term)
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					// Admission sheds are the contract under overload; a dead
					// replica must never surface here — failover hides it.
					shed.Add(1)
				default:
					d.violatef("phase %s: non-shed error %d for %q: %s", name, status, term, body)
				}
			}
		}(w)
	}
	wg.Wait()
	scriptWG.Wait()

	pr := phaseReport{Name: name, Requests: requests.Load(), Retries: retries.Load(), ByStatus: map[string]int{}}
	byStatus.Range(func(k, v any) bool {
		pr.ByStatus[strconv.Itoa(k.(int))] = int(v.(*atomic.Int64).Load())
		return true
	})
	d.mu.Lock()
	d.report.Phases = append(d.report.Phases, pr)
	d.report.Requests += pr.Requests
	d.report.Retries += pr.Retries
	d.report.Shed += shed.Load()
	d.mu.Unlock()
	log.Printf("chaos: phase %s: %d requests, %d retries, statuses %v", name, pr.Requests, pr.Retries, pr.ByStatus)
}

// relaxRetry fetches one term through the router with the shared backoff
// policy on 429/503 — the same client discipline loadgen uses.
func (d *routerDrill) relaxRetry(term string, rng *rand.Rand) ([]byte, int, int, error) {
	pol := retry.Policy{MaxRetries: 3, Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}
	url := d.base + d.relaxPath(term)
	var (
		body   []byte
		status int
		err    error
	)
	for attempt := 0; ; attempt++ {
		var resp *http.Response
		resp, err = d.client.Get(url)
		if err == nil {
			body, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			status = resp.StatusCode
		}
		retryable := err != nil || retry.RetryableStatus(status)
		if !retryable || attempt == pol.MaxRetries {
			return body, status, attempt + 1, err
		}
		var hinted time.Duration
		if err == nil {
			hinted = min(retry.After(resp.Header), 50*time.Millisecond)
		}
		time.Sleep(pol.Wait(attempt, hinted, rng))
	}
}

// finalChecks replays every golden term and the golden batch through the
// router after the bounce, and cross-checks the router's own metrics:
// the victim must have transitioned unhealthy and back, and all three
// replicas must be healthy again.
func (d *routerDrill) finalChecks(victimAddr string) {
	for _, term := range d.terms {
		body, status, err := d.get(d.base + d.relaxPath(term))
		if err != nil || status != http.StatusOK {
			d.violatef("final: GET /relax?term=%q via router: status %d, err %v", term, status, err)
			continue
		}
		if !bytes.Equal(body, d.golden[term]) {
			d.mu.Lock()
			d.report.Mismatches++
			d.mu.Unlock()
			d.violatef("final: routed response for %q differs from golden after recovery", term)
		}
	}

	body, status, err := d.post(d.base+"/relax/batch", d.batchBody)
	if err != nil || status != http.StatusOK {
		d.violatef("final: POST /relax/batch via router: status %d, err %v", status, err)
	} else if !bytes.Equal(body, d.batchGolden) {
		d.mu.Lock()
		d.report.Mismatches++
		d.mu.Unlock()
		d.violatef("final: scatter-gather batch differs from single-replica golden after recovery")
	}

	metricsBody, status, err := d.get(d.base + "/metrics")
	if err != nil || status != http.StatusOK {
		d.violatef("final: GET /metrics: status %d, err %v", status, err)
		return
	}
	text := string(metricsBody)
	for _, want := range []string{
		fmt.Sprintf("kbrouter_health_transitions_total{replica=%q,to=%q}", victimAddr, "unhealthy"),
		fmt.Sprintf("kbrouter_health_transitions_total{replica=%q,to=%q}", victimAddr, "healthy"),
	} {
		if !strings.Contains(text, want) {
			d.violatef("final: metrics missing %s — the bounce was not observed", want)
		}
	}
	for _, p := range d.replicas {
		if !d.rt.ReplicaHealthy(p.addr) {
			d.violatef("final: replica %s not healthy at end of drill", p.addr)
		}
	}

	d.checkTracing()
}

// checkTracing drives one explicitly-traced scatter batch through the
// recovered cluster and requires the router's recorder to hold a trace
// whose spans cover both services — router admission and shard legs from
// kbrouter, cache/kernel spans back-hauled from the kbserver replicas.
func (d *routerDrill) checkTracing() {
	header, traceID := trace.NewTraceparent()
	req, err := http.NewRequest(http.MethodPost, d.base+"/relax/batch", bytes.NewReader(d.batchBody))
	if err != nil {
		d.violatef("final: building traced batch request: %v", err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.TraceparentHeader, header)
	resp, err := d.client.Do(req)
	if err != nil {
		d.violatef("final: traced batch request: %v", err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		d.violatef("final: traced batch status %d", resp.StatusCode)
		return
	}

	traces, total := d.traceRec.Snapshot(false)
	d.mu.Lock()
	d.report.Traces = total
	d.mu.Unlock()
	for _, tr := range traces {
		if tr.TraceID != traceID {
			continue
		}
		services := map[string]bool{}
		names := map[string]bool{}
		for _, s := range tr.Spans {
			services[s.Service] = true
			names[s.Name] = true
		}
		switch {
		case !services["kbrouter"] || !services["kbserver"]:
			d.violatef("final: traced batch spans cover services %v, want kbrouter AND kbserver in one trace", services)
		case !names["router.admission"] || !names["router.shard"]:
			d.violatef("final: traced batch missing router spans (have %v)", names)
		case !names["serving.cache"] && !names["relax.kernel"]:
			// The batch terms may be cache-warm from the traffic phases, so
			// a kernel span is not guaranteed — but some replica-side span
			// (cache probe or kernel) must have been back-hauled.
			d.violatef("final: traced batch missing replica spans (have %v)", names)
		}
		return
	}
	d.violatef("final: trace %s not found in router recorder (%d traces held)", traceID, total)
}

func (d *routerDrill) writeReport(path string) error {
	b, err := json.MarshalIndent(d.report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// runRouterDrill is the -router entry point: returns the number of
// invariant violations.
func runRouterDrill(seed int64, phase time.Duration, workers, k int, out string) int {
	d, err := newRouterDrill(seed, phase, workers, k)
	if err != nil {
		log.Fatalf("chaos: router drill setup: %v", err)
	}
	defer d.cleanup()

	d.run()

	if err := d.writeReport(out); err != nil {
		log.Fatalf("chaos: writing report: %v", err)
	}
	if n := len(d.report.Violations); n > 0 {
		log.Printf("chaos: FAIL — %d invariant violation(s):", n)
		for _, v := range d.report.Violations {
			log.Printf("chaos:   - %s", v)
		}
		return n
	}
	log.Printf("chaos: PASS — %d requests through the router, %d retries, %d shed, %d kill / %d restart, 0 mismatches, 0 non-shed errors",
		d.report.Requests, d.report.Retries, d.report.Shed, d.report.Kills, d.report.Restarts)
	return 0
}
