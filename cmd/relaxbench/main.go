// Command relaxbench measures the online-phase serving performance — the
// workloads of BenchmarkRelaxLatency / BenchmarkRelaxParallel /
// BenchmarkSubsumerDistances — and records the numbers as JSON, so
// optimization work has a checked-in before/after record.
//
// Besides the lock-free parallel run it also measures the same workload
// serialized behind one global mutex: that is the serving model the server
// used before the relaxation pipeline became safe for concurrent use, so
// the serialized/parallel ratio isolates the concurrency win from
// single-thread kernel wins. On a single-core machine the two coincide.
//
//	go run ./cmd/relaxbench -out BENCH_relax.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"medrelax"
	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/eval"
	"medrelax/internal/synthkb"
)

// Measurement is one benchmark row.
type Measurement struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"nsPerOp"`
	AllocsOp int64   `json:"allocsPerOp"`
	BytesOp  int64   `json:"bytesPerOp"`
	Ops      int     `json:"ops"`
}

// Report is the BENCH_relax.json document.
type Report struct {
	Date         string        `json:"date"`
	GOOS         string        `json:"goos"`
	GOARCH       string        `json:"goarch"`
	CPUs         int           `json:"cpus"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	GoVersion    string        `json:"goVersion"`
	Measurements []Measurement `json:"measurements"`
	// ParallelSpeedup is serialized ns/op over lock-free parallel ns/op:
	// the throughput multiple the lock-free /relax path gains over the old
	// global-mutex serving model on this machine. Bounded by core count.
	ParallelSpeedup float64 `json:"parallelSpeedup"`
}

func row(name string, r testing.BenchmarkResult) Measurement {
	return Measurement{
		Name:     name,
		NsPerOp:  float64(r.NsPerOp()),
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
		Ops:      r.N,
	}
}

func growGraph(w *synthkb.World, target int) error {
	g := w.Graph
	next := eks.ConceptID(1)
	for _, id := range g.ConceptIDs() {
		if id >= next {
			next = id + 1
		}
	}
	for i := 0; g.Len() < target; i++ {
		parent := w.Findings[i%len(w.Findings)]
		if err := g.AddConcept(eks.Concept{ID: next, Name: fmt.Sprintf("variant %d of %d", i, parent)}); err != nil {
			return err
		}
		if err := g.AddSubsumption(next, parent); err != nil {
			return err
		}
		next++
	}
	return nil
}

// parseCPUList splits a -cpu flag value into GOMAXPROCS settings; empty
// means "just the current value", matching `go test -cpu` semantics.
func parseCPUList(csv string) []int {
	if strings.TrimSpace(csv) == "" {
		return []int{runtime.GOMAXPROCS(0)}
	}
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			log.Fatalf("relaxbench: bad -cpu entry %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return []int{runtime.GOMAXPROCS(0)}
	}
	return out
}

func main() {
	out := flag.String("out", "BENCH_relax.json", "output JSON path")
	large := flag.Bool("large", true, "include the 10^5-concept kernel benchmark")
	cpuCSV := flag.String("cpu", "", "comma-separated GOMAXPROCS values for the parallel benchmarks (empty: current value only)")
	flag.Parse()

	log.Printf("building system (seed %d)...", medrelax.DefaultConfig().Seed)
	sys, err := medrelax.Build(medrelax.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	queries := eval.SelectQueries(sys.Med, sys.Oracle, 32)
	if len(queries) == 0 {
		log.Fatal("no queries selected")
	}

	rep := Report{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}

	log.Print("measuring serial latency...")
	serial := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			sys.Relaxer.RelaxConcept(q.Concept, q.Ctx, 10)
		}
	})
	rep.Measurements = append(rep.Measurements, row("relax_latency", serial))

	// The same workload through each offline acceleration in isolation:
	// the materialized top-k store (full head, so every query hits) and
	// the posting-list candidate index. Both are byte-identity-checked in
	// tests; here they are only timed.
	log.Print("building offline accelerations (materialized top-k + candidate index)...")
	ing := sys.Ingestion
	sim := core.NewSimilarity(ing.Graph, ing.Frequencies, ing.Ontology)
	ropts := sys.Config.Relax
	mat := core.MaterializeTopK(ing, sim, core.MaterializeOptions{
		Enabled: true, Relax: ropts, HeadFraction: 1, HeadMax: 1 << 20, Contexts: ing.Contexts,
	})
	cidx := core.BuildCandidateIndex(ing, sim, core.CandidateIndexOptions{
		Enabled: true, Radius: ropts.MaxRadius,
	})
	matRelaxer := core.NewRelaxer(ing, sim, sys.Mapper, ropts)
	if !matRelaxer.SetMaterialized(mat) {
		log.Fatal("relaxbench: materialized store refused by the relaxer")
	}
	idxRelaxer := core.NewRelaxer(ing, sim, sys.Mapper, ropts)
	if !idxRelaxer.SetCandidateIndex(cidx) {
		log.Fatal("relaxbench: candidate index refused by the relaxer")
	}

	log.Print("measuring serial latency through the materialized store...")
	serialMat := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			matRelaxer.RelaxConcept(q.Concept, q.Ctx, 10)
		}
	})
	rep.Measurements = append(rep.Measurements, row("relax_latency_materialized", serialMat))

	log.Print("measuring serial latency through the candidate index...")
	serialIdx := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			idxRelaxer.RelaxConcept(q.Concept, q.Ctx, 10)
		}
	})
	rep.Measurements = append(rep.Measurements, row("relax_latency_indexed", serialIdx))
	if _, m, _ := matRelaxer.PathCounts(); m == 0 {
		log.Print("relaxbench: WARNING: no query hit the materialized store")
	}
	if _, _, ix := idxRelaxer.PathCounts(); ix == 0 {
		log.Print("relaxbench: WARNING: no query used the candidate index")
	}

	baseProcs := runtime.GOMAXPROCS(0)
	rep.GOMAXPROCS = baseProcs
	for _, procs := range parseCPUList(*cpuCSV) {
		prev := runtime.GOMAXPROCS(procs)
		suffix := ""
		if procs != baseProcs {
			suffix = fmt.Sprintf("_cpu%d", procs)
		}
		log.Printf("measuring serialized (global-mutex) parallel throughput (GOMAXPROCS=%d)...", procs)
		var mu sync.Mutex
		serialized := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					q := queries[i%len(queries)]
					mu.Lock()
					sys.Relaxer.RelaxConcept(q.Concept, q.Ctx, 10)
					mu.Unlock()
					i++
				}
			})
		})
		rep.Measurements = append(rep.Measurements, row("relax_parallel_serialized_baseline"+suffix, serialized))

		log.Printf("measuring lock-free parallel throughput (GOMAXPROCS=%d)...", procs)
		parallel := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					q := queries[i%len(queries)]
					sys.Relaxer.RelaxConcept(q.Concept, q.Ctx, 10)
					i++
				}
			})
		})
		rep.Measurements = append(rep.Measurements, row("relax_parallel_lockfree"+suffix, parallel))
		if p := parallel.NsPerOp(); p > 0 && rep.ParallelSpeedup == 0 {
			rep.ParallelSpeedup = float64(serialized.NsPerOp()) / float64(p)
		}
		runtime.GOMAXPROCS(prev)
	}

	sizes := []int{1_000, 10_000}
	if *large {
		sizes = append(sizes, 100_000)
	}
	for _, n := range sizes {
		cpp := 1
		if n > 2000 {
			cpp = 20
		}
		w, err := synthkb.Generate(synthkb.Config{Seed: 42, ConditionsPerPair: cpp})
		if err != nil {
			log.Fatal(err)
		}
		if err := growGraph(w, n); err != nil {
			log.Fatal(err)
		}
		g := w.Graph
		g.Freeze()
		ids := g.ConceptIDs()
		log.Printf("measuring dense kernel at %d concepts...", g.Len())
		kernel := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.SubsumerDistances(ids[(i*37)%len(ids)])
			}
		})
		rep.Measurements = append(rep.Measurements, row(fmt.Sprintf("subsumer_distances_n%d", n), kernel))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
	for _, m := range rep.Measurements {
		fmt.Printf("%-36s %12.0f ns/op %8d B/op %6d allocs/op\n", m.Name, m.NsPerOp, m.BytesOp, m.AllocsOp)
	}
	fmt.Printf("parallel speedup over serialized baseline: %.2fx (on %d CPUs)\n", rep.ParallelSpeedup, rep.CPUs)
}
