// Command kbrouter is the distributed serving tier: a shard router that
// fronts N kbserver replicas. Tenants and terms are placed on replicas by
// a consistent-hash ring (virtual nodes, deterministic rebalancing);
// GET /relax proxies to the owning replica, POST /relax/batch
// scatter-gathers across shards and merges outcomes byte-identical to a
// single-replica run. Active health probes plus passive failure marking
// route around dead replicas, with capped-jittered retries (the loadgen
// backoff policy) on the replica hop, and router-level admission sheds
// overload with 429 + Retry-After before any replica slot is spent.
//
// Endpoints:
//
//	GET  /healthz           router health + replica counts
//	GET  /stats             ring topology and per-replica health
//	GET  /metrics           router-labelled Prometheus metrics
//	GET  /relax?...         proxied to the owning replica
//	POST /relax/batch       scatter-gather across owning replicas
//	GET  /terms?n=N         proxied to any healthy replica
//	POST /chat              session-affine proxy (state lives on one replica)
//	POST /admin/reload      fan bundle reload to every replica
//
// Usage:
//
//	kbrouter -addr :9090 -replica 127.0.0.1:8081 -replica 127.0.0.1:8082
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"medrelax/internal/retry"
	"medrelax/internal/router"
	"medrelax/internal/trace"
)

func main() {
	var replicas []string
	var (
		addr       = flag.String("addr", ":9090", "listen address")
		vnodes     = flag.Int("vnodes", router.DefaultVNodes, "virtual nodes per replica on the placement ring")
		probeIntv  = flag.Duration("probe-interval", 500*time.Millisecond, "active health probe period (0: passive marking only)")
		probeTO    = flag.Duration("probe-timeout", 250*time.Millisecond, "per-probe deadline")
		failAfter  = flag.Int("fail-after", 3, "consecutive failures before a replica is marked down")
		maxConc    = flag.Int("max-concurrent", 256, "max concurrently routed /relax+/chat requests; excess sheds with 429 (0: unlimited)")
		retryHint  = flag.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
		retries    = flag.Int("retries", 2, "max retries per proxied request on replica failure")
		retryLo    = flag.Duration("retry-base", 25*time.Millisecond, "replica retry backoff base")
		retryHi    = flag.Duration("retry-cap", 500*time.Millisecond, "replica retry backoff cap")
		shardTO    = flag.Duration("shard-timeout", 5*time.Second, "per-shard deadline for scatter-gather batches")
		traceEvery = flag.Int("trace-sample", 128, "trace 1 in N requests arriving without a traceparent header (0 disables self-sampling; explicit sampled traceparent headers are always honored)")
	)
	flag.Func("replica", "host:port of one kbserver replica (repeatable)", func(v string) error {
		replicas = append(replicas, v)
		return nil
	})
	flag.Parse()
	if len(replicas) == 0 {
		log.Fatal("kbrouter: at least one -replica is required")
	}

	opts := router.DefaultOptions()
	opts.Replicas = replicas
	opts.VNodes = *vnodes
	opts.ProbeInterval = *probeIntv
	opts.ProbeTimeout = *probeTO
	opts.FailAfter = *failAfter
	opts.MaxConcurrent = *maxConc
	opts.RetryAfter = *retryHint
	opts.Retry = retry.Policy{MaxRetries: *retries, Base: *retryLo, Cap: *retryHi}
	opts.ShardTimeout = *shardTO
	opts.Tracer = trace.NewTracer("kbrouter", *traceEvery, trace.NewRecorder(256, 16))

	rt := router.New(opts)
	rt.Start()
	defer rt.Stop()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-shutdown
		log.Printf("kbrouter: %s — draining in-flight requests", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("kbrouter: shutdown: %v", err)
		}
	}()

	log.Printf("kbrouter listening on %s (replicas: %s)", *addr, strings.Join(replicas, ", "))
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("kbrouter: %v", err)
	}
	<-done
	log.Print("kbrouter: shutdown complete")
}
