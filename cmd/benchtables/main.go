// Command benchtables regenerates every table and figure of the paper's
// evaluation section against the synthetic world, printing the measured
// values next to the paper's reported ones (see EXPERIMENTS.md for the
// discussion of deviations).
//
// Usage:
//
//	benchtables              # everything
//	benchtables -table 2     # just Table 2
//	benchtables -figure 4    # just Figure 4
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"medrelax"
	"medrelax/internal/core"
	"medrelax/internal/eks"
	"medrelax/internal/eval"
	"medrelax/internal/synthkb"
)

func main() {
	var (
		seed   = flag.Int64("seed", 42, "generation seed")
		table  = flag.Int("table", 0, "regenerate only this table (1, 2 or 3)")
		figure = flag.Int("figure", 0, "regenerate only this figure (4, 5 or 6)")
		ci     = flag.Bool("ci", false, "bootstrap confidence intervals for the Table 2 comparisons")
	)
	flag.Parse()

	wantTable := func(n int) bool { return *figure == 0 && (*table == 0 || *table == n) }
	wantFigure := func(n int) bool { return *table == 0 && (*figure == 0 || *figure == n) }

	var sys *medrelax.System
	if wantTable(1) || wantTable(2) || wantTable(3) {
		cfg := medrelax.DefaultConfig()
		cfg.Seed = *seed
		fmt.Fprintln(os.Stderr, "building synthetic world ...")
		s, err := medrelax.Build(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		sys = s
	}

	if wantTable(1) {
		printTable1(sys)
	}
	if wantTable(2) {
		printTable2(sys)
		if *ci {
			printTable2CI(sys)
		}
	}
	if wantTable(3) {
		printTable3(sys)
	}
	if *table == 0 && *figure == 0 {
		printNLQ(sys)
	}
	if wantFigure(4) {
		printFigure4()
	}
	if wantFigure(5) {
		printFigure5()
	}
	if wantFigure(6) {
		printFigure6()
	}
}

// paper values for side-by-side comparison.
var (
	paperTable1 = map[string][3]float64{
		"EXACT":     {100, 83.33, 90.01},
		"EDIT":      {96.36, 88.33, 92.17},
		"EMBEDDING": {96.49, 91.67, 94.02},
	}
	paperTable2 = map[string][3]float64{
		"QR":                    {90.51, 82.64, 86.40},
		"QR-no-context":         {85.45, 77.27, 81.15},
		"QR-no-corpus":          {78.23, 70.91, 74.39},
		"IC":                    {75.55, 68.18, 71.68},
		"Embedding-pre-trained": {66.14, 60.13, 62.99},
		"Embedding-trained":     {79.37, 71.81, 75.40},
	}
)

func printTable1(sys *medrelax.System) {
	rows := [][]string{}
	for _, r := range sys.Table1() {
		p := paperTable1[r.Method]
		rows = append(rows, []string{
			r.Method,
			fmt.Sprintf("%.2f", r.Precision), fmt.Sprintf("%.2f", r.Recall), fmt.Sprintf("%.2f", r.F1),
			fmt.Sprintf("%.2f", p[0]), fmt.Sprintf("%.2f", p[1]), fmt.Sprintf("%.2f", p[2]),
		})
	}
	fmt.Println(eval.FormatTable("Table 1: accuracy of mapping methods (measured vs paper)",
		[]string{"Method", "P", "R", "F1", "paper P", "paper R", "paper F1"}, rows))
}

func printTable2(sys *medrelax.System) {
	rows := [][]string{}
	for _, r := range sys.Table2(100, 10) {
		p := paperTable2[r.Method]
		rows = append(rows, []string{
			r.Method,
			fmt.Sprintf("%.2f", r.Precision), fmt.Sprintf("%.2f", r.Recall), fmt.Sprintf("%.2f", r.F1),
			fmt.Sprintf("%.2f", p[0]), fmt.Sprintf("%.2f", p[1]), fmt.Sprintf("%.2f", p[2]),
		})
	}
	fmt.Println(eval.FormatTable("Table 2: overall effectiveness, P@10/R@10/F1 (measured vs paper)",
		[]string{"Method", "P@10", "R@10", "F1", "paper P", "paper R", "paper F1"}, rows))
}

// printTable2CI reports 95% bootstrap confidence intervals per method and
// the paired delta of QR over each alternative — is the lead bigger than
// query-sampling noise?
func printTable2CI(sys *medrelax.System) {
	queries := eval.SelectQueries(sys.Med, sys.Oracle, 100)
	perMethod := map[string][]float64{}
	var order []string
	for _, m := range sys.Methods {
		perMethod[m.Name()] = eval.PerQueryF1(m, queries, sys.Oracle, sys.Ingestion.Flagged, 10)
		order = append(order, m.Name())
	}
	rows := [][]string{}
	for _, name := range order {
		c := eval.BootstrapCI(perMethod[name], 2000, 0.95, 9)
		row := []string{name,
			fmt.Sprintf("%.1f", 100*c.Mean),
			fmt.Sprintf("[%.1f, %.1f]", 100*c.Low, 100*c.High)}
		if name != "QR" {
			d := eval.PairedBootstrapDelta(perMethod["QR"], perMethod[name], 2000, 0.95, 9)
			sig := ""
			if d.Low > 0 {
				sig = " *"
			}
			row = append(row, fmt.Sprintf("%.1f [%.1f, %.1f]%s", 100*d.Mean, 100*d.Low, 100*d.High, sig))
		} else {
			row = append(row, "—")
		}
		rows = append(rows, row)
	}
	fmt.Println(eval.FormatTable("Table 2 bootstrap CIs (per-query F1, 95%; * = QR lead excludes zero)",
		[]string{"Method", "mean F1", "95% CI", "QR delta"}, rows))
}

func printTable3(sys *medrelax.System) {
	res, err := sys.Table3(eval.StudyConfig{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
	fmt.Println(eval.FormatStudy(res))
	fmt.Printf("paper averages: QR T1 3.73, QR T2 3.31, no-QR T1 3.06, no-QR T2 2.67\n\n")
}

func printNLQ(sys *medrelax.System) {
	res := sys.NLQExperiment(eval.NLQConfig{})
	fmt.Println(eval.FormatNLQ(res))
	fmt.Println("(beyond the paper's tables: quantifies the Section 6.2 NLQ integration)")
	fmt.Println()
}

func printFigure4() {
	g, direct := synthkb.Figure4Fixture()
	ft, err := core.BuildFrequencyTableFromDirectCounts(g, direct, core.FrequencyOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
	fmt.Println("Figure 4: per-context frequency propagation on the paper's SNOMED snippet")
	for _, row := range []struct {
		id   eks.ConceptID
		name string
	}{
		{synthkb.Fig4Headache, "headache"},
		{synthkb.Fig4CraniofacialPain, "craniofacial pain"},
		{synthkb.Fig4PainInThroat, "pain in throat"},
		{synthkb.Fig4PainHeadNeck, "pain of head and neck region"},
	} {
		fmt.Printf("  %-30s indication=%6.0f risk=%5.0f\n", row.name,
			ft.Raw(row.id, synthkb.Fig4CtxIndication), ft.Raw(row.id, synthkb.Fig4CtxRisk))
	}
	fmt.Println("  paper: pain of head and neck region = 19164 (= 18878 + 283 + 3) / 1656")
	fmt.Println()
}

func printFigure5() {
	g := synthkb.Figure5Fixture()
	d, _ := g.SemanticDistance(synthkb.Fig5CKDStage1HT, synthkb.Fig5Kidney)
	fmt.Println("Figure 5: external knowledge source customization")
	fmt.Printf("  original distance CKD-stage-1-due-to-hypertension -> kidney disease: %d hops\n", d)
	if err := g.AddShortcutEdge(synthkb.Fig5CKDStage1HT, synthkb.Fig5Kidney, d); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
	hops := 0
	for _, nb := range g.NeighborsWithinHops(synthkb.Fig5Kidney, 1) {
		if nb.ID == synthkb.Fig5CKDStage1HT {
			hops = nb.Hops
		}
	}
	d2, _ := g.SemanticDistance(synthkb.Fig5CKDStage1HT, synthkb.Fig5Kidney)
	fmt.Printf("  after the shortcut edge: %d hop apart, semantic distance still %d\n", hops, d2)
	fmt.Println("  paper: 3 hops become 1 hop; the original 3-hop distance is attached to the new edge")
	fmt.Println()
}

func printFigure6() {
	g := synthkb.Figure6Fixture()
	w := core.DefaultPathWeights()
	p1, _ := g.ShortestSemanticPath(synthkb.Fig6Pneumonia, synthkb.Fig6LRTI)
	p2, _ := g.ShortestSemanticPath(synthkb.Fig6LRTI, synthkb.Fig6Pneumonia)
	fmt.Println("Figure 6: directional path penalties (Equation 4, w_gen=0.9, w_spec=1.0)")
	fmt.Printf("  pneumonia -> LRTI: %d hops, %d generalizations, weight %.4f (paper: 0.9^6 = %.4f)\n",
		p1.Len(), p1.Generalizations(), w.PathWeight(p1), math.Pow(0.9, 6))
	fmt.Printf("  LRTI -> pneumonia: %d hops, %d generalization,  weight %.4f (paper: 0.9^3 = %.4f)\n",
		p2.Len(), p2.Generalizations(), w.PathWeight(p2), math.Pow(0.9, 3))
	fmt.Println()
}
