// Command medrelax builds the synthetic medical world, runs the offline
// knowledge source ingestion, and answers query relaxation requests — one
// shot with -term, or interactively over stdin.
//
// Usage:
//
//	medrelax -term pyelectasia -context Indication-hasFinding-Finding -k 10
//	medrelax            # interactive: one term per line
package main

import (
	"bufio"
	stdcontext "context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"medrelax"
	"medrelax/internal/engine"
	"medrelax/internal/persist"
)

func main() {
	var (
		seed    = flag.Int64("seed", 42, "generation seed")
		scale   = flag.Int("world-scale", 0, "conditions per (body part, severity) pair; 0 = paper-scale default")
		term    = flag.String("term", "", "query term to relax (empty: interactive)")
		context = flag.String("context", medrelax.ContextIndication, "query context Domain-Relationship-Range (empty: context-free)")
		k       = flag.Int("k", 10, "number of results")
		mapper  = flag.String("mapper", "EMBEDDING", "term mapping method: EXACT, EDIT or EMBEDDING")
		quiet   = flag.Bool("quiet", false, "suppress build progress output")
		save    = flag.String("save", "", "after building, save the ingestion bundle to this file")
		format  = flag.String("format", "binary", "bundle format for -save: binary (compact), json (inspectable) or flat (zero-copy mmap)")

		materialize = flag.Bool("materialize", false, "precompute top-k relaxations for the head of the term distribution (persisted with -save)")
		matHead     = flag.Float64("materialize-head", 0.25, "fraction of flagged concepts (by corpus frequency) to materialize")
		matHeadMax  = flag.Int("materialize-head-max", 0, "cap on materialized head concepts (0: library default, -1: unlimited)")
		index       = flag.Bool("index", false, "build the posting-list candidate index (persisted with -save)")
		indexRadius = flag.Int("index-radius", 0, "candidate index hop radius (0: the serving MaxRadius, full dynamic-growth coverage)")
		load        = flag.String("load", "", "serve from a saved ingestion bundle instead of rebuilding the world")
		inspect     = flag.String("inspect", "", "print a bundle's format, sections and checksum status, then exit")
		secondSrc   = flag.Bool("second-source", false, "mount the variant vocabulary as a second named source (\"variant\") next to the primary")
		dot         = flag.String("dot", "", "write a Graphviz DOT neighbourhood of -term to this file and exit")
		dotHops     = flag.Int("dot-radius", 2, "hop radius of the -dot neighbourhood")
	)
	flag.Parse()

	if *inspect != "" {
		if err := inspectBundle(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, "medrelax:", err)
			os.Exit(1)
		}
		return
	}

	if *load != "" {
		if err := serveFromBundle(*load, *term, *context, *k, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, "medrelax:", err)
			os.Exit(1)
		}
		return
	}

	cfg := medrelax.DefaultConfig()
	cfg.Seed = *seed
	cfg.MapperName = *mapper
	cfg.EKS.ConditionsPerPair = *scale
	cfg.SecondSource = *secondSrc
	if *materialize {
		cfg.Ingest.Materialize.Enabled = true
		cfg.Ingest.Materialize.HeadFraction = *matHead
		cfg.Ingest.Materialize.HeadMax = *matHeadMax
	}
	if *index {
		cfg.Ingest.CandidateIndex.Enabled = true
		r := *indexRadius
		if r == 0 {
			r = cfg.Relax.MaxRadius
		}
		cfg.Ingest.CandidateIndex.Radius = r
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, "building synthetic world and running ingestion ...")
	}
	sys, err := medrelax.Build(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "medrelax:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "EKS: %d concepts, %d edges (%d shortcuts added); MED: %d instances; flagged concepts: %d\n",
			sys.World.Graph.Len(), sys.World.Graph.EdgeCount(), sys.Ingestion.ShortcutsAdded,
			sys.Med.Store.Len(), sys.Ingestion.FlaggedCount())
		tm := sys.Timings
		fmt.Fprintf(os.Stderr, "build timing: worldgen %s, embeddings %s, ingest %s (total %s)\n",
			tm.WorldGen.Round(time.Millisecond), tm.Embeddings.Round(time.Millisecond),
			tm.Ingest.Round(time.Millisecond), tm.Total.Round(time.Millisecond))
		if m := sys.Ingestion.Materialized; m != nil {
			fmt.Fprintf(os.Stderr, "materialized top-k: %d entries over %d head concepts\n", m.Entries(), m.Concepts())
		}
		if c := sys.Ingestion.Candidates; c != nil {
			fmt.Fprintf(os.Stderr, "candidate index: %d concepts, %d postings (radius %d, %d hubs skipped)\n",
				c.Concepts(), c.Postings(), c.Radius(), c.Skipped())
		}
	}
	if *save != "" {
		bundleFormat, err := persist.ParseFormat(*format)
		if err != nil {
			fmt.Fprintln(os.Stderr, "medrelax:", err)
			os.Exit(1)
		}
		saveStart := time.Now()
		// Atomic write (temp + fsync + rename): a crash mid-save leaves the
		// previous bundle intact rather than a torn file at -save.
		if err := persist.SaveFileAtomic(*save, sys.Ingestion, bundleFormat); err != nil {
			fmt.Fprintln(os.Stderr, "medrelax: saving bundle:", err)
			os.Exit(1)
		}
		if !*quiet {
			size := int64(0)
			if st, err := os.Stat(*save); err == nil {
				size = st.Size()
			}
			fmt.Fprintf(os.Stderr, "ingestion bundle saved to %s (%s, %d bytes, %s)\n",
				*save, *format, size, time.Since(saveStart).Round(time.Millisecond))
		}
	}

	if *dot != "" {
		if err := writeDOT(sys, *term, *dot, *dotHops); err != nil {
			fmt.Fprintln(os.Stderr, "medrelax:", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "DOT neighbourhood written to %s\n", *dot)
		}
		return
	}

	if *term != "" {
		if err := relaxOnce(sys, *term, *context, *k); err != nil {
			fmt.Fprintln(os.Stderr, "medrelax:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("enter a query term per line (ctrl-D to exit):")
	scanner := bufio.NewScanner(os.Stdin)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if err := relaxOnce(sys, line, *context, *k); err != nil {
			fmt.Println("  ", err)
		}
	}
}

func relaxOnce(sys *medrelax.System, term, context string, k int) error {
	results, err := sys.Relax(term, context, k)
	if err != nil {
		return err
	}
	fmt.Printf("relaxations of %q (context %s):\n", term, displayContext(context))
	for i, r := range results {
		names := make([]string, 0, len(r.Instances))
		for _, inst := range r.Instances {
			names = append(names, inst.Name)
		}
		fmt.Printf("%3d. %-50s score=%.4f hops=%d instances=[%s]\n",
			i+1, r.ConceptName, r.Score, r.Hops, strings.Join(names, "; "))
	}
	return nil
}

// serveFromBundle answers queries from a saved ingestion without
// regenerating the world or retraining embeddings, through the same
// engine.LoadSnapshot path kbserver cold-starts on.
func serveFromBundle(path, term, qctx string, k int, quiet bool) error {
	snap, err := engine.LoadSnapshot(path)
	if err != nil {
		return err
	}
	if !quiet {
		ing := snap.Ingestion()
		fmt.Fprintf(os.Stderr, "loaded bundle: %d EKS concepts, %d instances, %d flagged, %d contexts\n",
			ing.Graph.Len(), ing.Store.Len(), ing.FlaggedCount(), len(ing.Contexts))
	}

	relax := func(q string) error {
		results, err := snap.Relax(stdcontext.Background(), q, qctx, k)
		if err != nil {
			return err
		}
		fmt.Printf("relaxations of %q (context %s):\n", q, displayContext(qctx))
		for i, r := range results {
			fmt.Printf("%3d. %-50s score=%.4f hops=%d instances=[%s]\n",
				i+1, r.Concept, r.Score, r.Hops, strings.Join(r.Instances, "; "))
		}
		return nil
	}

	if term != "" {
		return relax(term)
	}
	fmt.Println("enter a query term per line (ctrl-D to exit):")
	scanner := bufio.NewScanner(os.Stdin)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if err := relax(line); err != nil {
			fmt.Println("  ", err)
		}
	}
	return nil
}

// writeDOT renders the term's EKS neighbourhood (flagged concepts
// highlighted, shortcut edges dashed with distances) for Graphviz.
func writeDOT(sys *medrelax.System, term, path string, radius int) error {
	if term == "" {
		return fmt.Errorf("-dot requires -term")
	}
	ids := sys.World.Graph.LookupName(term)
	if len(ids) == 0 {
		return fmt.Errorf("term %q not found in the external knowledge source", term)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = sys.World.Graph.WriteDOT(f, ids[0], radius, sys.Ingestion.Flagged)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// inspectBundle prints a bundle's structure without restoring it: format
// version, per-section names and sizes, per-section and whole-file CRC
// status, and the named sources a federated bundle carries.
func inspectBundle(path string) error {
	info, err := persist.InspectFile(path)
	if err != nil {
		return err
	}
	status := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAILED"
	}
	fmt.Printf("%s: %s (version %d), %d bytes, checksums %s\n",
		path, info.Format, info.Version, info.SizeBytes, status(info.CRCOK))
	if len(info.Sources) > 0 {
		fmt.Printf("secondary sources: %s\n", strings.Join(info.Sources, ", "))
	}
	for _, s := range info.Sections {
		fmt.Printf("  %-22s kind=%-3d off=%-10d len=%-10d crc=%s\n",
			s.Name, s.Kind, s.Offset, s.Length, status(s.CRCOK))
	}
	if !info.CRCOK {
		return fmt.Errorf("bundle %s failed checksum verification", path)
	}
	return nil
}

func displayContext(ctx string) string {
	if ctx == "" {
		return "none"
	}
	return ctx
}
