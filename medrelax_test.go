package medrelax

import (
	"sync"
	"testing"

	"medrelax/internal/eval"
)

// The default system takes a couple of seconds to build (world generation,
// corpus, two embedding models, ingestion); tests share one instance.
var (
	sysOnce sync.Once
	sysInst *System
	sysErr  error
)

func sharedSystem(tb testing.TB) *System {
	tb.Helper()
	sysOnce.Do(func() {
		sysInst, sysErr = Build(DefaultConfig())
	})
	if sysErr != nil {
		tb.Fatal(sysErr)
	}
	return sysInst
}

func TestBuildSystem(t *testing.T) {
	sys := sharedSystem(t)
	if sys.World.Graph.Len() < 800 {
		t.Errorf("EKS too small: %d concepts", sys.World.Graph.Len())
	}
	if sys.Med.Ontology.ConceptCount() != 43 || sys.Med.Ontology.RelationshipCount() != 58 {
		t.Errorf("MED ontology = %d/%d, want 43/58",
			sys.Med.Ontology.ConceptCount(), sys.Med.Ontology.RelationshipCount())
	}
	if sys.Med.Store.Len() < 1000 {
		t.Errorf("MED too small: %d instances", sys.Med.Store.Len())
	}
	if len(sys.Ingestion.Flagged) == 0 || sys.Ingestion.ShortcutsAdded == 0 {
		t.Error("ingestion produced no flags or shortcuts")
	}
	if len(sys.Ingestion.Contexts) != 58 {
		t.Errorf("contexts = %d, want 58 (one per relationship)", len(sys.Ingestion.Contexts))
	}
	if len(sys.Methods) != 6 {
		t.Errorf("methods = %d, want 6", len(sys.Methods))
	}
	if sys.Corpus.DocCount() == 0 || sys.GeneralCorpus.DocCount() == 0 {
		t.Error("corpora missing")
	}
}

func TestBuildErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MapperName = "NOPE"
	if _, err := Build(cfg); err == nil {
		t.Error("unknown mapper must fail")
	}
}

func TestRelaxEndToEnd(t *testing.T) {
	sys := sharedSystem(t)
	// "pyelectasia" is a curated concept; it may or may not have a KB
	// instance, but relaxation must return scored, named results.
	results, err := sys.Relax("pyelectasia", ContextIndication, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no relaxed results")
	}
	for i, r := range results {
		if r.ConceptName == "" {
			t.Errorf("result %d has no name", i)
		}
		if r.Score < 0 || r.Score > 1 {
			t.Errorf("score %v out of range", r.Score)
		}
		if i > 0 && results[i-1].Score < r.Score {
			t.Error("results not sorted by score")
		}
		if len(r.Instances) == 0 {
			t.Errorf("result %s has no KB instances (must be flagged)", r.ConceptName)
		}
	}
	// Context strings are validated.
	if _, err := sys.Relax("fever", "not-a-context-really-bad", 5); err == nil {
		t.Error("malformed context must fail")
	}
	// Unmappable terms are reported.
	if _, err := sys.Relax("zzqx blorp vrill", ContextIndication, 5); err == nil {
		t.Error("unmappable term must fail")
	}
	// Empty context relaxes without contextual information.
	if _, err := sys.Relax("fever", "", 5); err != nil {
		t.Errorf("context-free relaxation failed: %v", err)
	}
}

func TestTable1Shape(t *testing.T) {
	sys := sharedSystem(t)
	rows := sys.Table1()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]eval.MapperScore{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	exact, edit, emb := byName["EXACT"], byName["EDIT"], byName["EMBEDDING"]
	// Paper Table 1 shape: EXACT has perfect precision but the lowest
	// recall; EDIT recovers typos; EMBEDDING has the highest recall.
	if exact.Precision != 100 {
		t.Errorf("EXACT precision = %v, want 100", exact.Precision)
	}
	if !(exact.Recall < edit.Recall && edit.Recall < emb.Recall) {
		t.Errorf("recall ordering violated: EXACT %.1f, EDIT %.1f, EMBEDDING %.1f",
			exact.Recall, edit.Recall, emb.Recall)
	}
	if exact.Recall < 75 || exact.Recall > 95 {
		t.Errorf("EXACT recall %.1f outside the paper's band (~83)", exact.Recall)
	}
	if emb.Precision < 85 {
		t.Errorf("EMBEDDING precision %.1f too low", emb.Precision)
	}
}

func TestTable2Shape(t *testing.T) {
	sys := sharedSystem(t)
	rows := sys.Table2(100, 10)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	f1 := map[string]float64{}
	for _, r := range rows {
		f1[r.Method] = r.F1
	}
	// Paper Table 2 shape: QR wins; dropping context hurts; dropping the
	// corpus hurts more; the embedding baselines trail the QR family, with
	// the domain-mismatched pre-trained model worst of all.
	if !(f1["QR"] > f1["QR-no-context"]) {
		t.Errorf("QR (%.1f) must beat QR-no-context (%.1f)", f1["QR"], f1["QR-no-context"])
	}
	if !(f1["QR-no-context"] > f1["QR-no-corpus"]) {
		t.Errorf("QR-no-context (%.1f) must beat QR-no-corpus (%.1f)", f1["QR-no-context"], f1["QR-no-corpus"])
	}
	if !(f1["QR"] > f1["IC"]) {
		t.Errorf("QR (%.1f) must beat the IC baseline (%.1f)", f1["QR"], f1["IC"])
	}
	if !(f1["Embedding-trained"] > f1["Embedding-pre-trained"]) {
		t.Errorf("trained (%.1f) must beat pre-trained (%.1f)",
			f1["Embedding-trained"], f1["Embedding-pre-trained"])
	}
	if !(f1["QR"] > f1["Embedding-trained"]) {
		t.Errorf("QR (%.1f) must beat Embedding-trained (%.1f)", f1["QR"], f1["Embedding-trained"])
	}
	if f1["Embedding-pre-trained"] >= f1["IC"] {
		t.Errorf("pre-trained (%.1f) must be the weakest family (IC %.1f)",
			f1["Embedding-pre-trained"], f1["IC"])
	}
}

func TestTable3Shape(t *testing.T) {
	sys := sharedSystem(t)
	res, err := sys.Table3(eval.StudyConfig{Participants: 10})
	if err != nil {
		t.Fatal(err)
	}
	qr1, qr2 := res.WithQR.T1.Average(), res.WithQR.T2.Average()
	no1, no2 := res.WithoutQR.T1.Average(), res.WithoutQR.T2.Average()
	// Paper Table 3 shape: relaxation lifts satisfaction in both tasks
	// (about 20% in the paper), and the guided task T1 scores at least as
	// well as the free task T2 for the baseline system.
	if qr1 <= no1 || qr2 <= no2 {
		t.Errorf("QR must beat no-QR: T1 %.2f vs %.2f, T2 %.2f vs %.2f", qr1, no1, qr2, no2)
	}
	if (qr1+qr2)/2 < 1.1*(no1+no2)/2 {
		t.Errorf("QR lift too small: QR avg %.2f vs no-QR avg %.2f", (qr1+qr2)/2, (no1+no2)/2)
	}
	if no2 > no1 {
		t.Errorf("free task must not beat guided task without QR: T1 %.2f, T2 %.2f", no1, no2)
	}
	// Distributions are complete.
	if res.WithQR.T1.Total() != 10*20 || res.WithQR.T2.Total() != 10*10 {
		t.Errorf("totals = %d/%d", res.WithQR.T1.Total(), res.WithQR.T2.Total())
	}
}

func TestConversationIntegration(t *testing.T) {
	sys := sharedSystem(t)
	conv, err := sys.NewConversation(true)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a treated finding whose KB instance carries the canonical name
	// (an exact-class instance), and ask about it canonically.
	var name string
	for cid := range sys.Med.Treated {
		c, _ := sys.World.Graph.Concept(cid)
		iid := sys.Med.FindingInstance[cid]
		if inst, ok := sys.Med.Store.Instance(iid); ok && inst.Name == c.Name {
			name = c.Name
			break
		}
	}
	if name == "" {
		t.Fatal("no exact-named treated finding found")
	}
	resp := conv.Ask("what drugs treat " + name)
	if !resp.Understood {
		t.Fatalf("canonical question not understood: %+v", resp)
	}
	if len(resp.Answers) == 0 {
		t.Errorf("no answers for treated finding %q", name)
	}
}

// TestTable2ShapeAcrossSeeds guards the headline orderings against seed
// luck: the full QR-family ordering of the paper must hold on a second,
// unrelated seed too.
func TestTable2ShapeAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("builds an extra system")
	}
	cfg := DefaultConfig()
	cfg.Seed = 1234
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f1 := map[string]float64{}
	for _, r := range sys.Table2(100, 10) {
		f1[r.Method] = r.F1
	}
	order := []string{"QR", "QR-no-context", "QR-no-corpus", "IC", "Embedding-trained", "Embedding-pre-trained"}
	for i := 1; i < len(order); i++ {
		if f1[order[i-1]] <= f1[order[i]] {
			t.Errorf("seed 1234: %s (%.1f) must beat %s (%.1f)",
				order[i-1], f1[order[i-1]], order[i], f1[order[i]])
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping second build in -short mode")
	}
	a, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Table1(), b.Table1()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("Table 1 not deterministic: %+v vs %+v", ra[i], rb[i])
		}
	}
	if a.World.Graph.Len() != b.World.Graph.Len() || a.Ingestion.ShortcutsAdded != b.Ingestion.ShortcutsAdded {
		t.Error("world or ingestion not deterministic")
	}
}

func TestNLQExperimentShape(t *testing.T) {
	sys := sharedSystem(t)
	res := sys.NLQExperiment(eval.NLQConfig{Questions: 120})
	if res.WithQR.Total != 120 || res.WithoutQR.Total != 120 {
		t.Fatalf("totals = %d/%d", res.WithQR.Total, res.WithoutQR.Total)
	}
	// Relaxation must expand the set of answerable queries — the title
	// claim — and the expansion must be mostly correct.
	if res.WithQR.Answered <= res.WithoutQR.Answered {
		t.Errorf("QR answered %d <= no-QR %d", res.WithQR.Answered, res.WithoutQR.Answered)
	}
	if res.WithQR.Correct <= res.WithoutQR.Correct {
		t.Errorf("QR correct %d <= no-QR %d", res.WithQR.Correct, res.WithoutQR.Correct)
	}
	// Without relaxation, unknown-concept questions are mostly unanswerable
	// (the few exceptions ground a shorter lexical span, e.g. "mild lung
	// cyst" falling back to the covered "lung cyst" — plain NLQ matching,
	// not relaxation).
	if res.WithoutQR.ByKind["unknown-concept"] >= res.WithQR.ByKind["unknown-concept"] {
		t.Errorf("no-QR arm answered %d unknown-concept questions, QR %d",
			res.WithoutQR.ByKind["unknown-concept"], res.WithQR.ByKind["unknown-concept"])
	}
	// With relaxation, both classes get correct answers.
	if res.WithQR.ByKind["colloquial"] == 0 || res.WithQR.ByKind["unknown-concept"] == 0 {
		t.Errorf("QR breakdown = %v", res.WithQR.ByKind)
	}
	// Canonical questions are answered by both arms.
	if res.WithoutQR.ByKind["canonical"] == 0 {
		t.Error("no-QR arm failed canonical questions")
	}
	t.Logf("\n%s", eval.FormatNLQ(res))
}
