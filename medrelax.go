// Package medrelax is the public face of a from-scratch reproduction of
// "Expanding Query Answers on Medical Knowledge Bases" (EDBT 2020): a
// domain-specific query relaxation system that customizes an external
// medical knowledge source (a synthetic SNOMED-CT-like DAG) to a medical
// knowledge base and answers [query term, context] lookups with
// semantically related KB instances.
//
// The package wires the substrates under internal/ into one reproducible
// System: the synthetic world (external knowledge source, MED knowledge
// base, monograph corpus), embedding models, the three mapping methods, the
// offline ingestion of Algorithm 1, the online relaxer of Algorithm 2, the
// six methods compared in the paper's Table 2, and the evaluation oracle.
//
// Quick start:
//
//	sys, err := medrelax.Build(medrelax.DefaultConfig())
//	results, err := sys.Relax("pyelectasia", medrelax.ContextIndication, 10)
package medrelax

import (
	"context"
	"fmt"
	"time"

	"medrelax/internal/core"
	"medrelax/internal/corpus"
	"medrelax/internal/dialog"
	"medrelax/internal/eks"
	"medrelax/internal/embedding"
	"medrelax/internal/engine"
	"medrelax/internal/eval"
	"medrelax/internal/kb"
	"medrelax/internal/match"
	"medrelax/internal/medkb"
	"medrelax/internal/nlq"
	"medrelax/internal/stringutil"
	"medrelax/internal/synthkb"
)

// Re-exported context constants for the two finding contexts of the
// paper's Figure 1.
const (
	ContextIndication = medkb.CtxIndicationFinding
	ContextRisk       = medkb.CtxRiskFinding
)

// Config assembles the knobs of every stage. Zero values select defaults
// tuned to the paper's scale.
type Config struct {
	// Seed seeds every stage (each stage derives its own stream).
	Seed int64
	// EKS configures the synthetic external knowledge source.
	EKS synthkb.Config
	// MED configures the synthetic knowledge base.
	MED medkb.Config
	// Corpus configures monograph generation.
	Corpus medkb.CorpusConfig
	// Embedding configures both embedding models.
	Embedding embedding.Config
	// Ingest configures the offline phase.
	Ingest core.IngestOptions
	// Relax configures the online phase.
	Relax core.RelaxOptions
	// MapperName selects the ingestion mapper: EXACT, EDIT or EMBEDDING.
	// The paper uses word embeddings after Table 1; default EMBEDDING.
	MapperName string
	// SecondSource mounts a second external knowledge source next to the
	// primary: the variant vocabulary derived from the world's latent
	// surface forms (synthkb.GenerateVariant), ingested over the same KB
	// and fused at serving time under the name "variant". Its coverage
	// deliberately complements the primary's — it resolves paraphrase
	// query terms the primary's mappers cannot place.
	SecondSource bool
}

// DefaultConfig returns the configuration used by the experiment harness.
func DefaultConfig() Config {
	return Config{
		Seed:       42,
		MapperName: "EMBEDDING",
		Relax:      core.RelaxOptions{Radius: 3, DynamicRadius: true, MaxRadius: 6},
	}
}

// BuildTimings breaks down where Build spent its wall-clock time, so the
// CLI and server can report the offline-phase cost (and the speedup of
// loading a persisted bundle instead).
type BuildTimings struct {
	// WorldGen covers synthetic EKS + MED + corpus generation.
	WorldGen time.Duration
	// Embeddings covers training both embedding models and the encoders.
	Embeddings time.Duration
	// Ingest covers Algorithm 1 (mapping, frequencies, customization),
	// including the dense-index freeze.
	Ingest time.Duration
	// Total is the whole Build call.
	Total time.Duration
}

// System is a fully built reproduction environment. The servable part —
// frozen ingestion, relaxer, term index — lives in Engine, the one
// immutable snapshot every serving layer consumes; System adds the
// synthetic world, embedding models, and evaluation harness around it.
type System struct {
	Config        Config
	World         *synthkb.World
	Med           *medkb.MED
	Corpus        *corpus.Corpus
	GeneralCorpus *corpus.Corpus
	MedModel      *embedding.Model
	GeneralModel  *embedding.Model
	MedEncoder    *embedding.SIFEncoder
	GenEncoder    *embedding.SIFEncoder
	Mappers       map[string]match.Mapper
	Mapper        match.Mapper
	Ingestion     *core.Ingestion
	Engine        *engine.Snapshot
	Relaxer       *core.Relaxer
	Methods       []core.Method
	Oracle        *eval.Oracle
	Timings       BuildTimings
}

// Build generates the synthetic world and runs the offline phase.
func Build(cfg Config) (*System, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.MapperName == "" {
		cfg.MapperName = "EMBEDDING"
	}
	if cfg.EKS.Seed == 0 {
		cfg.EKS.Seed = cfg.Seed
	}
	if cfg.MED.Seed == 0 {
		cfg.MED.Seed = cfg.Seed + 1
	}
	if cfg.Corpus.Seed == 0 {
		cfg.Corpus.Seed = cfg.Seed + 2
	}
	if cfg.Embedding.Seed == 0 {
		cfg.Embedding.Seed = cfg.Seed + 3
	}

	var timings BuildTimings
	start := time.Now()
	world, err := synthkb.Generate(cfg.EKS)
	if err != nil {
		return nil, fmt.Errorf("medrelax: generating external knowledge source: %w", err)
	}
	med, err := medkb.Generate(world, cfg.MED)
	if err != nil {
		return nil, fmt.Errorf("medrelax: generating MED: %w", err)
	}
	corp := medkb.BuildCorpus(world, med, cfg.Corpus)
	general := medkb.BuildPretrainCorpus(world, cfg.Seed+4, 0)
	timings.WorldGen = time.Since(start)

	embedStart := time.Now()
	medModel, err := embedding.Train(corp.TokenStreams(), cfg.Embedding)
	if err != nil {
		return nil, fmt.Errorf("medrelax: training corpus embeddings: %w", err)
	}
	genCfg := cfg.Embedding
	genCfg.Seed = cfg.Embedding.Seed + 1
	genModel, err := embedding.Train(general.TokenStreams(), genCfg)
	if err != nil {
		return nil, fmt.Errorf("medrelax: training general embeddings: %w", err)
	}

	// SIF reference set: every name key of the external knowledge source.
	var refs [][]string
	for _, key := range world.Graph.NameKeys() {
		refs = append(refs, stringutil.Tokenize(key))
	}
	medEnc := embedding.NewSIFEncoder(medModel, 0, refs)
	genEnc := embedding.NewSIFEncoder(genModel, 0, refs)

	mappers := map[string]match.Mapper{
		"EXACT":     match.NewExact(world.Graph),
		"EDIT":      match.NewEdit(world.Graph, 0),
		"EMBEDDING": match.NewEmbedding(world.Graph, medEnc, 0),
	}
	mapper, ok := mappers[cfg.MapperName]
	if !ok {
		return nil, fmt.Errorf("medrelax: unknown mapper %q (want EXACT, EDIT or EMBEDDING)", cfg.MapperName)
	}
	timings.Embeddings = time.Since(embedStart)

	// An enabled materialization with no explicit relaxation options
	// inherits the serving options: the stored top-k answers are only
	// servable when they were computed under the exact options the online
	// relaxer runs with, so defaulting to anything else would build a
	// store the engine refuses to attach.
	if cfg.Ingest.Materialize.Enabled && cfg.Ingest.Materialize.Relax == (core.RelaxOptions{}) {
		cfg.Ingest.Materialize.Relax = cfg.Relax
	}

	ingestStart := time.Now()
	ing, err := core.Ingest(med.Ontology, med.Store, world.Graph, corp, mapper, cfg.Ingest)
	if err != nil {
		return nil, fmt.Errorf("medrelax: ingestion: %w", err)
	}
	if cfg.SecondSource {
		vg, err := synthkb.GenerateVariant(world)
		if err != nil {
			return nil, fmt.Errorf("medrelax: generating variant vocabulary: %w", err)
		}
		// The variant source maps by surface form only (exact, then edit
		// distance) — no embeddings: its whole point is to exactly know the
		// names the primary does not. Its ingestion runs over the same KB
		// store, ontology and corpus, so its frequency table speaks the
		// same contexts. Accelerations stay primary-only.
		vmapper := match.NewCombined(match.NewExact(vg), match.NewEdit(vg, 0))
		vopts := core.IngestOptions{Frequency: cfg.Ingest.Frequency, Parallelism: cfg.Ingest.Parallelism}
		ving, err := core.Ingest(med.Ontology, med.Store, vg, corp, vmapper, vopts)
		if err != nil {
			return nil, fmt.Errorf("medrelax: ingesting variant vocabulary: %w", err)
		}
		ing.Sources = []core.NamedSource{{Name: "variant", Ing: ving}}
	}
	timings.Ingest = time.Since(ingestStart)
	timings.Total = time.Since(start)

	// The servable assembly (freeze, similarity, relaxer, term index)
	// happens in exactly one place: engine.New. The conversation factory
	// and world stats close over sys, assigned below before any caller can
	// invoke them.
	var sys *System
	snap := engine.New(ing, engine.Config{
		Relax:  cfg.Relax,
		Mapper: mapper,
		Conversation: func() (*dialog.Conversation, error) {
			return sys.NewConversation(true)
		},
		ExtraStats: func() map[string]any {
			return map[string]any{
				"corpusTokens":     sys.Corpus.TokenCount(),
				"embeddingVocab":   sys.MedModel.VocabSize(),
				"ontologyConcepts": sys.Med.Ontology.ConceptCount(),
			}
		},
	})

	methods := []core.Method{
		core.NewQR(ing, mapper, cfg.Relax),
		core.NewQRNoContext(ing, mapper, cfg.Relax),
		core.NewQRNoCorpus(ing, mapper, cfg.Relax),
		core.NewICBaseline(ing, mapper, cfg.Relax),
		core.NewEmbeddingMethod("Embedding-pre-trained", ing, genEnc),
		core.NewEmbeddingMethod("Embedding-trained", ing, medEnc),
	}

	sys = &System{
		Config:        cfg,
		World:         world,
		Med:           med,
		Corpus:        corp,
		GeneralCorpus: general,
		MedModel:      medModel,
		GeneralModel:  genModel,
		MedEncoder:    medEnc,
		GenEncoder:    genEnc,
		Mappers:       mappers,
		Mapper:        mapper,
		Ingestion:     ing,
		Engine:        snap,
		Relaxer:       snap.Relaxer(),
		Methods:       methods,
		Oracle:        eval.NewOracle(world, med),
		Timings:       timings,
	}
	return sys, nil
}

// Result is one relaxed answer resolved to surface names.
type Result struct {
	ConceptID   eks.ConceptID
	ConceptName string
	Score       float64
	Hops        int
	Instances   []InstanceRef
}

// InstanceRef names a KB instance in a result.
type InstanceRef struct {
	ID   kb.InstanceID
	Name string
}

// Relax answers a [query term, context] pair with up to k ranked relaxed
// results, resolving concepts and instances to names. ctx may be "" for
// context-free relaxation; otherwise it is a Domain-Relationship-Range
// string such as ContextIndication.
func (s *System) Relax(term, ctx string, k int) ([]Result, error) {
	return s.RelaxContext(context.Background(), term, ctx, k)
}

// RelaxContext is Relax under request-scoped cancellation: the serving
// layer threads HTTP deadlines through here. Context-string parse
// failures wrap core.ErrBadContext so servers can map them to 400.
func (s *System) RelaxContext(cctx context.Context, term, ctx string, k int) ([]Result, error) {
	results, err := s.Engine.RelaxIDs(cctx, term, ctx, k)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(results))
	for _, r := range results {
		concept, _ := s.World.Graph.Concept(r.Concept)
		res := Result{ConceptID: r.Concept, ConceptName: concept.Name, Score: r.Score, Hops: r.Hops}
		for _, iid := range r.Instances {
			inst, _ := s.Med.Store.Instance(iid)
			res.Instances = append(res.Instances, InstanceRef{ID: iid, Name: inst.Name})
		}
		out = append(out, res)
	}
	return out, nil
}

// Table1 runs the mapping-accuracy experiment over the three mapping
// methods, reproducing the paper's Table 1.
func (s *System) Table1() []eval.MapperScore {
	mappers := []match.Mapper{s.Mappers["EXACT"], s.Mappers["EDIT"], s.Mappers["EMBEDDING"]}
	return eval.EvaluateMappers(s.Med, mappers)
}

// Table2 runs the overall-effectiveness experiment over all six methods
// with numQueries queries and top-k judgment, reproducing the paper's
// Table 2 (which uses 100 queries and k=10).
func (s *System) Table2(numQueries, k int) []eval.MethodScore {
	queries := eval.SelectQueries(s.Med, s.Oracle, numQueries)
	return eval.EvaluateMethods(s.Methods, queries, s.Oracle, s.Ingestion.Flagged, k)
}

// NewConversation builds a dialogue over the system's KB. withQR toggles
// query relaxation — the two arms of the paper's user study.
func (s *System) NewConversation(withQR bool) (*dialog.Conversation, error) {
	examples := dialog.GenerateTrainingExamples(s.Med.Ontology, s.Med.Store, s.Config.Seed+5, 0)
	classifier, err := dialog.TrainIntentClassifier(examples)
	if err != nil {
		return nil, fmt.Errorf("medrelax: training intent classifier: %w", err)
	}
	extractor := dialog.NewMentionExtractor(s.Med.Store, s.World.Graph.NameKeys())
	if !withQR {
		return dialog.NewConversation(s.Med.Store, s.Med.Ontology, classifier, extractor, nil, nil), nil
	}
	// The online phase resolves colloquial terms by exact match, then edit
	// distance, then embeddings (Section 3), and repair includes the mapped
	// concept itself when the KB knows it.
	combined := match.NewCombined(s.Mappers["EXACT"], s.Mappers["EDIT"], s.Mappers["EMBEDDING"])
	opts := s.Config.Relax
	opts.IncludeSelf = true
	relaxer := s.Engine.NewRelaxer(combined, opts)
	return dialog.NewConversation(s.Med.Store, s.Med.Ontology, classifier, extractor, relaxer, s.Ingestion), nil
}

// NewNLQSystem builds the Section 6.2 natural language query pipeline over
// the system's KB; withQR toggles relaxation-backed evidence generation.
func (s *System) NewNLQSystem(withQR bool) *nlq.System {
	if !withQR {
		return nlq.NewSystem(s.Med.Ontology, s.Med.Store, nil, nil)
	}
	combined := match.NewCombined(s.Mappers["EXACT"], s.Mappers["EDIT"], s.Mappers["EMBEDDING"])
	opts := s.Config.Relax
	opts.IncludeSelf = true
	relaxer := s.Engine.NewRelaxer(combined, opts)
	return nlq.NewSystem(s.Med.Ontology, s.Med.Store, relaxer, s.Ingestion)
}

// NLQExperiment runs the query-answerability comparison on the NLQ
// pipeline with and without relaxation — quantifying the paper's title
// claim on the Section 6.2 integration.
func (s *System) NLQExperiment(cfg eval.NLQConfig) eval.NLQResult {
	if cfg.Seed == 0 {
		cfg.Seed = s.Config.Seed + 7
	}
	return eval.RunNLQExperiment(s.Oracle, s.Ingestion.Flagged, s.NewNLQSystem(true), s.NewNLQSystem(false), cfg)
}

// Table3 runs the simulated user study, reproducing the paper's Table 3.
func (s *System) Table3(cfg eval.StudyConfig) (eval.StudyResult, error) {
	withQR, err := s.NewConversation(true)
	if err != nil {
		return eval.StudyResult{}, err
	}
	withoutQR, err := s.NewConversation(false)
	if err != nil {
		return eval.StudyResult{}, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = s.Config.Seed + 6
	}
	env := eval.StudyEnvironment{
		WithQR:    withQR,
		WithoutQR: withoutQR,
		Oracle:    s.Oracle,
		Flagged:   s.Ingestion.Flagged,
	}
	return eval.RunUserStudy(env, cfg), nil
}
